//! The fast path (paper §4): "We have however implemented fast-path
//! receive and send routines which handle the normal cases quickly, and
//! defer to the full code for the less common cases."
//!
//! This is Van Jacobson's header prediction, specialized to the two
//! common cases of an established bulk connection:
//!
//! 1. a pure in-sequence ACK of new data with no window change — the
//!    sender's steady state;
//! 2. a pure in-sequence data segment with nothing new in its ACK field
//!    — the receiver's steady state.
//!
//! Anything else returns `false` and falls through to the Receive
//! module's full SEGMENT-ARRIVES DAG.

use crate::action::{TcpAction, TimerKind};
use crate::resend;
use crate::send;
use crate::tcb::TcpState;
use crate::{ConnCore, TcpConfig};
use foxbasis::time::VirtualTime;
use foxwire::tcp::TcpSegment;
use std::fmt::Debug;

/// Attempts fast-path processing; returns `true` if the segment was
/// fully handled.
pub fn try_fast<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    seg: &TcpSegment,
    now: VirtualTime,
) -> bool {
    if core.state != TcpState::Estab {
        return false;
    }
    let h = &seg.header;
    // Header prediction: flags must be exactly ACK, sequence must be
    // exactly what we expect, and the window must not change.
    if h.flags.syn || h.flags.fin || h.flags.rst || h.flags.urg || !h.flags.ack {
        return false;
    }
    if h.seq != core.tcb.rcv_nxt {
        return false;
    }
    if u32::from(h.window) != core.tcb.snd_wnd {
        return false;
    }

    if seg.payload.is_empty() {
        // Case 1: pure ACK of new data.
        if h.ack.in_open_closed(core.tcb.snd_una, core.tcb.snd_nxt) {
            resend::process_ack(cfg, core, h.ack, now);
            send::maybe_send(cfg, core, now);
            return true;
        }
        false
    } else {
        // Case 2: pure in-order data, nothing new acknowledged, and the
        // whole payload fits our buffer.
        if h.ack != core.tcb.snd_una {
            return false;
        }
        if core.tcb.recv_buf.free() < seg.payload.len() {
            return false;
        }
        if !core.tcb.out_of_order.is_empty() {
            return false; // let the full path manage reassembly
        }
        let tcb = &mut core.tcb;
        let took = tcb.recv_buf.write(&seg.payload);
        debug_assert_eq!(took, seg.payload.len());
        tcb.rcv_nxt += took as u32;
        tcb.bytes_since_ack += took as u32;
        tcb.segs_since_ack += 1;
        tcb.push_action(TcpAction::UserData(seg.payload.clone()));
        match cfg.delayed_ack_ms {
            Some(ms) if tcb.segs_since_ack < 2 && tcb.bytes_since_ack < 2 * tcb.mss => {
                tcb.ack_pending = true;
                tcb.push_action(TcpAction::SetTimer(TimerKind::DelayedAck, ms));
            }
            _ => {
                send::queue_ack(core);
                core.tcb.push_action(TcpAction::ClearTimer(TimerKind::DelayedAck));
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxbasis::seq::Seq;
    use foxwire::tcp::{TcpFlags, TcpHeader};

    fn cfg() -> TcpConfig {
        TcpConfig::default()
    }

    fn estab() -> ConnCore<u32> {
        let mut core: ConnCore<u32> = ConnCore::new(&cfg(), 1000, Seq(100), 1460);
        core.remote = Some((7, 2000));
        core.state = TcpState::Estab;
        core.tcb.mss = 1000;
        core.tcb.snd_wnd = 4096;
        core.tcb.rcv_nxt = Seq(5000);
        core.tcb.snd_una = Seq(100);
        core.tcb.snd_nxt = Seq(100);
        core
    }

    fn seg(seq: u32, ack: u32, window: u16, payload: &[u8]) -> TcpSegment {
        let mut h = TcpHeader::new(2000, 1000);
        h.seq = Seq(seq);
        h.ack = Seq(ack);
        h.flags = TcpFlags::ACK;
        h.window = window;
        TcpSegment { header: h, payload: payload.to_vec() }
    }

    #[test]
    fn pure_ack_taken_fast() {
        let mut core = estab();
        // One outstanding segment.
        core.tcb.send_buf.write(&[1; 500]);
        core.tcb.snd_nxt = Seq(600);
        core.tcb.resend_queue.push_back(crate::tcb::SentSegment {
            seq: Seq(100),
            len: 500,
            syn: false,
            fin: false,
        });
        assert!(try_fast(&cfg(), &mut core, &seg(5000, 600, 4096, b""), VirtualTime::ZERO));
        assert_eq!(core.tcb.snd_una, Seq(600));
        assert!(core.tcb.resend_queue.is_empty());
    }

    #[test]
    fn pure_data_taken_fast() {
        let mut core = estab();
        let payload = vec![9u8; 700];
        assert!(try_fast(&cfg(), &mut core, &seg(5000, 100, 4096, &payload), VirtualTime::ZERO));
        assert_eq!(core.tcb.rcv_nxt, Seq(5700));
        let tags: Vec<_> =
            core.tcb.to_do.borrow_mut().drain_all().iter().map(|a| a.tag()).collect();
        assert!(tags.contains(&"User_Data"));
    }

    #[test]
    fn rejects_non_estab() {
        let mut core = estab();
        core.state = TcpState::FinWait1 { fin_acked: false };
        assert!(!try_fast(&cfg(), &mut core, &seg(5000, 100, 4096, b"x"), VirtualTime::ZERO));
    }

    #[test]
    fn rejects_flag_anomalies() {
        let mut core = estab();
        let mut s = seg(5000, 100, 4096, b"");
        s.header.flags.fin = true;
        assert!(!try_fast(&cfg(), &mut core, &s, VirtualTime::ZERO));
        let mut s = seg(5000, 100, 4096, b"");
        s.header.flags.syn = true;
        assert!(!try_fast(&cfg(), &mut core, &s, VirtualTime::ZERO));
        let mut s = seg(5000, 100, 4096, b"");
        s.header.flags.ack = false;
        assert!(!try_fast(&cfg(), &mut core, &s, VirtualTime::ZERO));
    }

    #[test]
    fn rejects_out_of_sequence() {
        let mut core = estab();
        assert!(!try_fast(&cfg(), &mut core, &seg(5001, 100, 4096, b"late"), VirtualTime::ZERO));
    }

    #[test]
    fn rejects_window_change() {
        let mut core = estab();
        assert!(!try_fast(&cfg(), &mut core, &seg(5000, 100, 2048, b""), VirtualTime::ZERO));
    }

    #[test]
    fn rejects_old_ack_as_pure_ack() {
        let mut core = estab();
        core.tcb.snd_una = Seq(200);
        core.tcb.snd_nxt = Seq(600);
        assert!(!try_fast(&cfg(), &mut core, &seg(5000, 200, 4096, b""), VirtualTime::ZERO));
    }

    #[test]
    fn rejects_data_when_reassembly_pending() {
        let mut core = estab();
        core.tcb.insert_out_of_order(Seq(6000), vec![1; 10], false);
        assert!(!try_fast(&cfg(), &mut core, &seg(5000, 100, 4096, b"abc"), VirtualTime::ZERO));
    }

    #[test]
    fn rejects_data_when_buffer_tight() {
        let mut core = estab();
        let fill = core.tcb.recv_buf.capacity() - 10;
        core.tcb.recv_buf.write(&vec![0u8; fill]);
        assert!(!try_fast(&cfg(), &mut core, &seg(5000, 100, 4096, &[1u8; 20]), VirtualTime::ZERO));
    }
}
