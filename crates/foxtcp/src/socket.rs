//! Typestate socket wrappers: the connection lifecycle in the type
//! system.
//!
//! "Session Types for the Transport Layer" encodes a transport
//! protocol's lifecycle so that illegal operations are unrepresentable;
//! this module does the lightweight Rust version of that for the user
//! API. Each lifecycle stage is a distinct wrapper around
//! [`TcpConnId`]:
//!
//! ```text
//!   Tcp::listen ──────────▶ ListeningSocket ──accept──▶ ConnectingSocket
//!   Tcp::connect ─────────▶ ConnectingSocket ──try_established──▶ EstablishedSocket
//!   EstablishedSocket ──close──▶ (consumed; FIN in flight)
//! ```
//!
//! A [`ListeningSocket`] has no `send_data` method and a
//! [`ConnectingSocket`] has no `accept`, so the mistakes the RFC's
//! state diagram forbids are *compile* errors, not runtime `Err`s:
//!
//! ```compile_fail
//! use foxtcp::testlink::{TestAux, TestLower};
//! use foxtcp::{ListeningSocket, Tcp};
//!
//! fn illegal(sock: &ListeningSocket, tcp: &mut Tcp<TestLower, TestAux>) {
//!     // A listener transfers no data: `send_data` does not exist on
//!     // `ListeningSocket`.
//!     sock.send_data(tcp, b"no data before a connection exists");
//! }
//! ```
//!
//! ```compile_fail
//! use foxtcp::testlink::{TestAux, TestLower};
//! use foxtcp::{ConnectingSocket, Tcp, TcpConnId};
//!
//! fn illegal(sock: &ConnectingSocket, tcp: &mut Tcp<TestLower, TestAux>) {
//!     // Only a listener owns an accept queue: `accept` does not exist
//!     // on `ConnectingSocket`.
//!     let _ = sock.accept(tcp, TcpConnId(7), Box::new(|_| {}));
//! }
//! ```
//!
//! The wrappers are deliberately thin — each holds only the
//! [`TcpConnId`] and every operation borrows the engine explicitly —
//! so the untyped [`Tcp`] API remains available underneath for callers
//! (and tests) that need to poke at the raw lifecycle.

use crate::engine::{Tcp, TcpConnId, TcpEvent, TcpPattern};
use crate::tcb::TcpState;
use foxproto::aux::IpAux;
use foxproto::{Handler, ProtoError, Protocol};

/// A passive socket in LISTEN: it can spawn children and be closed,
/// nothing else.
#[derive(Debug)]
pub struct ListeningSocket {
    id: TcpConnId,
}

/// A socket whose handshake is in flight: SYN-SENT for an active open,
/// SYN-RECEIVED for a freshly accepted child. It carries no data yet.
#[derive(Debug)]
pub struct ConnectingSocket {
    id: TcpConnId,
}

/// A synchronized connection: the only stage at which `send_data`
/// exists.
#[derive(Debug)]
pub struct EstablishedSocket {
    id: TcpConnId,
}

impl<L, A> Tcp<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    /// Passive open, typed: [`Tcp::open`] with a
    /// [`TcpPattern::Passive`], wrapped as a [`ListeningSocket`].
    pub fn listen(
        &mut self,
        local_port: u16,
        handler: Handler<TcpEvent>,
    ) -> Result<ListeningSocket, ProtoError> {
        let id = self.open(TcpPattern::Passive { local_port }, handler)?;
        Ok(ListeningSocket { id })
    }

    /// Active open, typed: [`Tcp::open`] with a [`TcpPattern::Active`],
    /// wrapped as a [`ConnectingSocket`] (promote it with
    /// [`ConnectingSocket::try_established`] once the handshake
    /// completes).
    pub fn connect(
        &mut self,
        remote: L::Peer,
        remote_port: u16,
        local_port: u16,
        handler: Handler<TcpEvent>,
    ) -> Result<ConnectingSocket, ProtoError> {
        let id = self.open(TcpPattern::Active { remote, remote_port, local_port }, handler)?;
        Ok(ConnectingSocket { id })
    }
}

impl ListeningSocket {
    /// The underlying connection id (for state queries and metrics).
    pub fn id(&self) -> TcpConnId {
        self.id
    }

    /// Adopts a child announced via [`TcpEvent::NewConnection`]:
    /// installs its upcall handler and takes it off the accept queue.
    /// The child's handshake may still be in flight, so it comes back
    /// as a [`ConnectingSocket`].
    pub fn accept<L, A>(
        &self,
        tcp: &mut Tcp<L, A>,
        child: TcpConnId,
        handler: Handler<TcpEvent>,
    ) -> Result<ConnectingSocket, ProtoError>
    where
        L: Protocol,
        A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
    {
        tcp.set_handler(child, handler)?;
        Ok(ConnectingSocket { id: child })
    }

    /// Closes the listener, consuming the socket.
    pub fn close<L, A>(self, tcp: &mut Tcp<L, A>) -> Result<(), ProtoError>
    where
        L: Protocol,
        A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
    {
        tcp.close(self.id)
    }
}

impl ConnectingSocket {
    /// The underlying connection id (for state queries and metrics).
    pub fn id(&self) -> TcpConnId {
        self.id
    }

    /// Promotes the socket once the three-way handshake has completed.
    /// Returns the socket unchanged (as the `Err` side) while the
    /// connection is still synchronizing — or if it has already died
    /// (reset, timed out, reaped), in which case it will never promote.
    pub fn try_established<L, A>(self, tcp: &Tcp<L, A>) -> Result<EstablishedSocket, ConnectingSocket>
    where
        L: Protocol,
        A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
    {
        match tcp.state_of(self.id) {
            Some(s) if s.is_synchronized() && s != TcpState::TimeWait => {
                Ok(EstablishedSocket { id: self.id })
            }
            _ => Err(self),
        }
    }

    /// Abandons the connection attempt, consuming the socket.
    pub fn close<L, A>(self, tcp: &mut Tcp<L, A>) -> Result<(), ProtoError>
    where
        L: Protocol,
        A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
    {
        tcp.close(self.id)
    }
}

impl EstablishedSocket {
    /// The underlying connection id (for state queries and metrics).
    pub fn id(&self) -> TcpConnId {
        self.id
    }

    /// Accepts as much of `data` as fits the send buffer; returns the
    /// number of bytes taken (0 means flow control pushed back).
    pub fn send_data<L, A>(&self, tcp: &mut Tcp<L, A>, data: &[u8]) -> Result<usize, ProtoError>
    where
        L: Protocol,
        A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
    {
        tcp.send_data(self.id, data)
    }

    /// Free space in the connection's send buffer.
    pub fn send_capacity<L, A>(&self, tcp: &Tcp<L, A>) -> Result<usize, ProtoError>
    where
        L: Protocol,
        A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
    {
        tcp.send_capacity(self.id)
    }

    /// Graceful close (FIN), consuming the socket.
    pub fn close<L, A>(self, tcp: &mut Tcp<L, A>) -> Result<(), ProtoError>
    where
        L: Protocol,
        A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
    {
        tcp.close(self.id)
    }
}
