//! The Send module: "segments outgoing data and places corresponding
//! Send_Segment actions onto the to_do queue" (paper §4).
//!
//! Nothing here transmits — transmission is the Action module's job
//! (performed by the engine when a `Send_Segment` action reaches the
//! front of the queue). This module only decides *what* may be sent
//! given the peer's window, the congestion window, MSS, and Nagle's
//! algorithm, and stages the segments.

use crate::action::{LossEvent, TcpAction, TimerKind};
use crate::resend;
use crate::tcb::SentSegment;
use crate::{ConnCore, TcpConfig};
use foxbasis::buf::{PacketBuf, DEFAULT_HEADROOM};
use foxbasis::seq::Seq;
use foxbasis::time::VirtualTime;
use foxwire::tcp::{TcpFlags, TcpHeader, TcpOption, TcpSegment};
use std::fmt::Debug;

/// The RFC 7323 timestamp clock: the virtual clock in milliseconds,
/// truncated to the 32-bit TSval field (wrap is handled by the
/// modular-arithmetic comparisons on the receive side).
pub fn ts_val(now: VirtualTime) -> u32 {
    now.as_millis() as u32
}

/// Builds a header for the current connection state: ports, `rcv_nxt`
/// acknowledgment, advertised window (scaled per the negotiation), and
/// the per-segment options — timestamps and SACK blocks — that ride on
/// every post-handshake segment once negotiated. SYN options are the
/// caller's job ([`push_syn_options`]).
pub fn make_header<P: Clone + PartialEq + Debug>(
    core: &ConnCore<P>,
    flags: TcpFlags,
    seq: Seq,
    now: VirtualTime,
) -> TcpHeader {
    let mut h = TcpHeader::new(core.local_port, core.remote.as_ref().map(|(_, p)| *p).unwrap_or(0));
    h.seq = seq;
    h.ack = if flags.ack { core.tcb.rcv_nxt } else { Seq(0) };
    h.flags = flags;
    h.window = core.tcb.wire_window_field(flags.syn);
    if !flags.syn {
        if core.tcb.ts_on {
            h.options.push(TcpOption::Timestamps(ts_val(now), core.tcb.ts_recent));
        }
        if core.tcb.sack_on && flags.ack {
            let blocks = core.tcb.sack_blocks_to_send();
            if !blocks.is_empty() {
                h.options.push(TcpOption::Sack(blocks));
            }
        }
    }
    h
}

/// Appends the negotiated-at-SYN options to a SYN or SYN+ACK header:
/// MSS always; window scale, SACK-permitted and timestamps per the
/// offer flags (on our SYN) or per what the peer's SYN already agreed
/// to (on a SYN+ACK — an option the peer withheld is cleanly omitted,
/// RFC 7323 §2.5).
pub fn push_syn_options<P: Clone + PartialEq + Debug>(
    core: &ConnCore<P>,
    header: &mut TcpHeader,
    now: VirtualTime,
) {
    header.options.push(TcpOption::MaxSegmentSize(core.our_mss.min(65535) as u16));
    let tcb = &core.tcb;
    let answering = header.flags.ack; // SYN+ACK answers the peer's offers
    if if answering { tcb.wscale_on } else { tcb.offer_wscale } {
        header.options.push(TcpOption::WindowScale(tcb.rcv_wscale));
    }
    if if answering { tcb.sack_on } else { tcb.offer_sack } {
        header.options.push(TcpOption::SackPermitted);
    }
    if if answering { tcb.ts_on } else { tcb.offer_ts } {
        header.options.push(TcpOption::Timestamps(ts_val(now), tcb.ts_recent));
    }
}

/// Stages a pure ACK of the current `rcv_nxt`.
pub fn queue_ack<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>, now: VirtualTime) {
    let header = make_header(core, TcpFlags::ACK, core.tcb.snd_nxt, now);
    core.tcb.ack_pending = false;
    core.tcb.bytes_since_ack = 0;
    core.tcb.segs_since_ack = 0;
    core.tcb.push_action(TcpAction::SendSegment(TcpSegment { header, payload: PacketBuf::new() }));
}

/// Stages our SYN (active open) or SYN+ACK (passive/simultaneous open).
/// Advances `snd_nxt` over the SYN octet and records it for
/// retransmission.
pub fn queue_syn<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>, with_ack: bool, now: VirtualTime) {
    let flags = if with_ack { TcpFlags::SYN_ACK } else { TcpFlags::SYN };
    let mut header = make_header(core, flags, core.tcb.iss, now);
    push_syn_options(core, &mut header, now);
    core.tcb.push_action(TcpAction::SendSegment(TcpSegment { header, payload: PacketBuf::new() }));
    if core.tcb.snd_nxt == core.tcb.iss {
        let iss = core.tcb.iss;
        core.tcb.snd_nxt = iss + 1;
        resend::record_sent(
            &mut core.tcb,
            SentSegment { seq: iss, payload: PacketBuf::new(), syn: true, fin: false },
            now,
        );
    }
}

/// Stages as much pending data (and the pending FIN) as the windows
/// allow. This is the segmentation loop; each staged segment is recorded
/// in the retransmission queue.
pub fn maybe_send<P: Clone + PartialEq + Debug>(cfg: &TcpConfig, core: &mut ConnCore<P>, now: VirtualTime) {
    loop {
        let tcb = &core.tcb;
        if core.tcb.fin_seq.is_some_and(|f| core.tcb.snd_nxt.gt(f)) {
            return; // FIN already sent: sequence space exhausted
        }
        let unsent = tcb.unsent();
        let usable = tcb.usable_window();
        let take = unsent.min(usable).min(core.tcb.eff_mss());

        let fin_now = core.tcb.fin_pending && core.tcb.fin_seq.is_none() && unsent == take; // this segment (possibly empty) drains the buffer

        if take == 0 && !fin_now {
            // Nothing sendable. If data is stuck behind a closed window,
            // make sure the persist machinery is armed.
            if unsent > 0 && usable == 0 && core.tcb.flight_size() == 0 {
                let probe_in = core.tcb.persist_timeout().as_millis();
                core.tcb.push_action(TcpAction::SetTimer(TimerKind::Persist, probe_in));
            }
            return;
        }

        // Nagle: hold small segments while anything is in flight.
        if cfg.nagle && !fin_now && take < core.tcb.eff_mss() && core.tcb.flight_size() > 0 && take == unsent
        {
            return;
        }

        // Copy the staged bytes out of the send buffer exactly once,
        // folding the checksum into the same pass (the paper's Fig. 10
        // combined copy/checksum loop). The resulting buffer is the one
        // the wire encoders prepend into, the one the engine hands down,
        // and the one the retransmission queue re-references.
        let syn_outstanding = core.tcb.resend_queue.iter().any(|s| s.syn);
        let offset = (core.tcb.flight_size() as usize).saturating_sub(usize::from(syn_outstanding));
        let send_buf = &core.tcb.send_buf;
        let payload = PacketBuf::build_summed(DEFAULT_HEADROOM, take as usize, |dst| {
            let (got, sum) = send_buf.peek_at_sum(offset, dst);
            debug_assert_eq!(got as u32, take, "staged bytes must be present");
            sum
        });

        let seq = core.tcb.snd_nxt;
        let push = take > 0 && take == unsent;
        let flags = TcpFlags { ack: true, psh: push, fin: fin_now, ..TcpFlags::default() };
        let header = make_header(core, flags, seq, now);
        core.tcb.push_action(TcpAction::SendSegment(TcpSegment { header, payload: payload.clone() }));
        core.tcb.snd_nxt = seq + take + u32::from(fin_now);
        if fin_now {
            core.tcb.fin_seq = Some(seq + take);
        }
        core.tcb.ack_pending = false;
        core.tcb.bytes_since_ack = 0;
        core.tcb.segs_since_ack = 0;
        core.tcb.push_action(TcpAction::ClearTimer(TimerKind::DelayedAck));
        resend::record_sent(&mut core.tcb, SentSegment { seq, payload, syn: false, fin: fin_now }, now);
        if fin_now {
            return;
        }
    }
}

/// Accepts user bytes into the send buffer (the paper's `queued` store);
/// returns how many were accepted (zero means the buffer is full — flow
/// control pushes back on the user).
pub fn user_send<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    data: &[u8],
    now: VirtualTime,
) -> usize {
    if core.tcb.fin_pending {
        return 0;
    }
    let written = core.tcb.send_buf.write(data);
    if written > 0 {
        maybe_send(cfg, core, now);
    }
    written
}

/// The persist (zero-window probe) timer fired: send one byte beyond
/// the window to force the peer to re-advertise, and re-arm with
/// backoff.
pub fn window_probe<P: Clone + PartialEq + Debug>(
    _cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    now: VirtualTime,
) {
    let tcb = &core.tcb;
    if tcb.snd_wnd > 0 || tcb.unsent() == 0 {
        return; // window opened meanwhile, or nothing to probe with
    }
    let syn_outstanding = core.tcb.resend_queue.iter().any(|s| s.syn);
    let offset = (core.tcb.flight_size() as usize).saturating_sub(usize::from(syn_outstanding));
    let send_buf = &core.tcb.send_buf;
    let mut got = 0;
    let payload = PacketBuf::build_summed(DEFAULT_HEADROOM, 1, |dst| {
        let (n, sum) = send_buf.peek_at_sum(offset, dst);
        got = n;
        sum
    });
    if got == 0 {
        return;
    }
    let seq = core.tcb.snd_nxt;
    let header = make_header(core, TcpFlags { ack: true, psh: true, ..TcpFlags::default() }, seq, now);
    core.tcb.push_action(TcpAction::SendSegment(TcpSegment { header, payload: payload.clone() }));
    core.tcb.snd_nxt = seq + 1;
    resend::record_sent(&mut core.tcb, SentSegment { seq, payload, syn: false, fin: false }, now);
    // Back off the *persist* exponent, not the RTT one: the peer will
    // ACK the probe byte, and that ACK resets `rtt.backoff` in
    // `process_ack` — which used to pin the probe interval at its base
    // value forever. The persist exponent only resets when the window
    // actually opens (`receive::update_send_window`).
    core.tcb.persist_backoff = (core.tcb.persist_backoff + 1).min(6);
    core.tcb.push_action(TcpAction::Loss(LossEvent::Probe));
    let next = core.tcb.persist_timeout().as_millis();
    core.tcb.push_action(TcpAction::SetTimer(TimerKind::Persist, next));
}

/// Stages an RST in reply to `seg`, per RFC 793 page 36: take the
/// sequence number from the offending segment's ACK when it has one,
/// otherwise ACK everything it occupied.
pub fn reset_for(local_port: u16, seg: &TcpSegment) -> TcpSegment {
    let mut h = TcpHeader::new(local_port, seg.header.src_port);
    if seg.header.flags.ack {
        h.seq = seg.header.ack;
        h.flags = TcpFlags::RST;
    } else {
        h.seq = Seq(0);
        h.ack = seg.header.seq + seg.seq_len();
        h.flags = TcpFlags::RST_ACK;
    }
    TcpSegment { header: h, payload: PacketBuf::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcb::TcpState;

    fn estab_core(wnd: u32) -> ConnCore<u32> {
        let cfg = TcpConfig::default();
        let mut core: ConnCore<u32> = ConnCore::new(&cfg, 1000, Seq(100), 1460);
        core.remote = Some((7, 2000));
        core.state = TcpState::Estab;
        core.tcb.mss = 1000;
        core.tcb.snd_wnd = wnd;
        core.tcb.rcv_nxt = Seq(5000);
        core
    }

    fn staged_segments(core: &ConnCore<u32>) -> Vec<TcpSegment> {
        core.tcb
            .to_do
            .borrow_mut()
            .drain_all()
            .into_iter()
            .filter_map(|a| match a {
                TcpAction::SendSegment(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn segmentation_respects_mss() {
        let cfg = TcpConfig { nagle: false, ..TcpConfig::default() };
        let mut core = estab_core(10_000);
        let n = user_send(&cfg, &mut core, &[7u8; 2500], VirtualTime::ZERO);
        assert_eq!(n, 2500);
        let segs = staged_segments(&core);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].payload.len(), 1000);
        assert_eq!(segs[1].payload.len(), 1000);
        assert_eq!(segs[2].payload.len(), 500);
        assert_eq!(segs[0].header.seq, Seq(100));
        assert_eq!(segs[1].header.seq, Seq(1100));
        assert_eq!(segs[2].header.seq, Seq(2100));
        assert!(segs[2].header.flags.psh, "last segment pushes");
        assert!(!segs[0].header.flags.psh);
        assert_eq!(core.tcb.snd_nxt, Seq(2600));
        assert_eq!(core.tcb.resend_queue.len(), 3);
    }

    #[test]
    fn segmentation_subtracts_the_timestamp_option() {
        // RFC 6691 §3: the MSS never accounts for options, so with
        // timestamps on the segmentation loop must shave the option's
        // 12 padded bytes — a "full" segment sized by the raw MSS would
        // overflow the link MTU and fragment.
        let cfg = TcpConfig { nagle: false, ..TcpConfig::default() };
        let mut core = estab_core(10_000);
        core.tcb.ts_on = true;
        let n = user_send(&cfg, &mut core, &[7u8; 2000], VirtualTime::ZERO);
        assert_eq!(n, 2000);
        let segs = staged_segments(&core);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].payload.len(), 988, "mss 1000 less the 12-byte option");
        assert_eq!(segs[1].payload.len(), 988);
        assert_eq!(segs[2].payload.len(), 24);
        assert_eq!(
            segs[0].header.header_len() + segs[0].payload.len(),
            20 + 1000,
            "header plus payload fills exactly what the raw MSS promised the link"
        );
    }

    #[test]
    fn send_respects_peer_window() {
        let cfg = TcpConfig { nagle: false, ..TcpConfig::default() };
        let mut core = estab_core(1500);
        user_send(&cfg, &mut core, &[1u8; 4000], VirtualTime::ZERO);
        let segs = staged_segments(&core);
        let sent: usize = segs.iter().map(|s| s.payload.len()).sum();
        assert_eq!(sent, 1500, "only the advertised window goes out");
        assert_eq!(core.tcb.unsent(), 2500);
    }

    #[test]
    fn send_respects_congestion_window() {
        let cfg = TcpConfig { nagle: false, ..TcpConfig::default() };
        let mut core = estab_core(60_000);
        core.tcb.cwnd = 2000;
        user_send(&cfg, &mut core, &[1u8; 8000], VirtualTime::ZERO);
        let segs = staged_segments(&core);
        let sent: usize = segs.iter().map(|s| s.payload.len()).sum();
        assert_eq!(sent, 2000);
    }

    #[test]
    fn nagle_holds_small_tail() {
        let cfg = TcpConfig::default(); // nagle on
        let mut core = estab_core(10_000);
        user_send(&cfg, &mut core, &[1u8; 1300], VirtualTime::ZERO);
        let segs = staged_segments(&core);
        // First 1000 go out (nothing in flight yet), the 300-byte tail
        // is held while the first segment is unacknowledged.
        assert_eq!(segs.len(), 2 - 1, "tail held: {segs:?}");
        assert_eq!(segs[0].payload.len(), 1000);
        assert_eq!(core.tcb.unsent(), 300);
    }

    #[test]
    fn nagle_off_sends_immediately() {
        let cfg = TcpConfig { nagle: false, ..TcpConfig::default() };
        let mut core = estab_core(10_000);
        user_send(&cfg, &mut core, &[1u8; 1300], VirtualTime::ZERO);
        assert_eq!(staged_segments(&core).len(), 2);
        assert_eq!(core.tcb.unsent(), 0);
    }

    #[test]
    fn zero_window_arms_persist() {
        let cfg = TcpConfig { nagle: false, ..TcpConfig::default() };
        let mut core = estab_core(0);
        user_send(&cfg, &mut core, &[1u8; 100], VirtualTime::ZERO);
        let acts: Vec<String> =
            core.tcb.to_do.borrow_mut().drain_all().iter().map(|a| format!("{a:?}")).collect();
        assert!(acts.iter().any(|a| a.starts_with("Set_Timer(Persist")), "{acts:?}");
        assert!(!acts.iter().any(|a| a.starts_with("Send_Segment")));
    }

    #[test]
    fn window_probe_sends_one_byte() {
        let cfg = TcpConfig { nagle: false, ..TcpConfig::default() };
        let mut core = estab_core(0);
        user_send(&cfg, &mut core, b"probe-me", VirtualTime::ZERO);
        core.tcb.to_do.borrow_mut().clear();
        window_probe(&cfg, &mut core, VirtualTime::from_millis(500));
        let segs = staged_segments(&core);
        // Note: staged_segments drained Set_Timer too — re-check via a
        // fresh probe call below.
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].payload, b"p");
        assert_eq!(core.tcb.snd_nxt, Seq(101));
    }

    #[test]
    fn persist_backoff_survives_probe_acks() {
        // Regression: the probe interval used to ride on `rtt.backoff`,
        // which the ACK of each probe byte resets — so probes re-fired
        // at a constant interval forever. The persist exponent must keep
        // growing across answered probes until the window opens.
        let cfg = TcpConfig { nagle: false, ..TcpConfig::default() };
        let mut core = estab_core(0);
        user_send(&cfg, &mut core, &[7u8; 100], VirtualTime::ZERO);
        core.tcb.to_do.borrow_mut().clear();
        let mut intervals = Vec::new();
        let mut now = VirtualTime::ZERO;
        for _ in 0..4 {
            window_probe(&cfg, &mut core, now);
            // The peer ACKs the probe byte but still advertises zero.
            let ack = core.tcb.snd_nxt;
            crate::resend::process_ack(&cfg, &mut core, ack, now);
            assert_eq!(core.tcb.rtt.backoff, 0, "the probe ACK resets the RTT backoff");
            let acts: Vec<String> =
                core.tcb.to_do.borrow_mut().drain_all().iter().map(|a| format!("{a:?}")).collect();
            let ms: u64 = acts
                .iter()
                .filter_map(|a| a.strip_prefix("Set_Timer(Persist, "))
                .map(|rest| rest.trim_end_matches("ms)").parse().unwrap())
                .next_back()
                .expect("probe re-arms the persist timer");
            intervals.push(ms);
            now += foxbasis::time::VirtualDuration::from_millis(ms);
        }
        assert_eq!(intervals, vec![2000, 4000, 8000, 16000], "intervals must double");
    }

    #[test]
    fn window_opening_resets_persist_backoff() {
        let cfg = TcpConfig { nagle: false, ..TcpConfig::default() };
        let mut core = estab_core(0);
        user_send(&cfg, &mut core, &[7u8; 100], VirtualTime::ZERO);
        for _ in 0..3 {
            window_probe(&cfg, &mut core, VirtualTime::from_millis(500));
        }
        assert_eq!(core.tcb.persist_backoff, 3);
        core.tcb.persist_backoff = 0; // what receive::update_send_window does
        assert_eq!(core.tcb.persist_timeout(), core.tcb.rtt.rto, "back to the base interval");
    }

    #[test]
    fn probe_skipped_when_window_open() {
        let cfg = TcpConfig::default();
        let mut core = estab_core(1000);
        core.tcb.send_buf.write(b"data");
        window_probe(&cfg, &mut core, VirtualTime::ZERO);
        assert!(staged_segments(&core).is_empty());
    }

    #[test]
    fn fin_piggybacks_on_last_segment() {
        let cfg = TcpConfig { nagle: false, ..TcpConfig::default() };
        let mut core = estab_core(10_000);
        user_send(&cfg, &mut core, &[9u8; 500], VirtualTime::ZERO);
        core.tcb.to_do.borrow_mut().clear();
        // Pretend nothing was sent yet so FIN piggybacks: reset.
        let mut core = estab_core(10_000);
        core.tcb.send_buf.write(&[9u8; 500]);
        core.tcb.fin_pending = true;
        maybe_send(&cfg, &mut core, VirtualTime::ZERO);
        let segs = staged_segments(&core);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].header.flags.fin);
        assert_eq!(segs[0].payload.len(), 500);
        assert_eq!(core.tcb.fin_seq, Some(Seq(600)));
        assert_eq!(core.tcb.snd_nxt, Seq(601), "FIN consumes one sequence number");
    }

    #[test]
    fn bare_fin_when_buffer_empty() {
        let cfg = TcpConfig::default();
        let mut core = estab_core(10_000);
        core.tcb.fin_pending = true;
        maybe_send(&cfg, &mut core, VirtualTime::ZERO);
        let segs = staged_segments(&core);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].header.flags.fin && segs[0].header.flags.ack);
        assert!(segs[0].payload.is_empty());
    }

    #[test]
    fn no_data_after_fin() {
        let cfg = TcpConfig::default();
        let mut core = estab_core(10_000);
        core.tcb.fin_pending = true;
        maybe_send(&cfg, &mut core, VirtualTime::ZERO);
        assert_eq!(user_send(&cfg, &mut core, b"late", VirtualTime::ZERO), 0);
    }

    #[test]
    fn syn_carries_mss_option() {
        let cfg = TcpConfig::default();
        let mut core: ConnCore<u32> = ConnCore::new(&cfg, 1000, Seq(100), 1460);
        core.remote = Some((7, 2000));
        core.state = TcpState::SynSent { retries_left: 3 };
        queue_syn(&mut core, false, VirtualTime::ZERO);
        let segs = staged_segments(&core);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].header.flags.syn && !segs[0].header.flags.ack);
        assert_eq!(segs[0].header.mss(), Some(1460));
        assert_eq!(core.tcb.snd_nxt, Seq(101));
        assert_eq!(core.tcb.resend_queue.len(), 1);
        // Re-queueing (retransmission path) does not double-advance.
        queue_syn(&mut core, false, VirtualTime::ZERO);
        assert_eq!(core.tcb.snd_nxt, Seq(101));
        assert_eq!(core.tcb.resend_queue.len(), 1);
    }

    #[test]
    fn syn_offers_configured_options_and_syn_ack_echoes_negotiated() {
        let cfg = TcpConfig {
            window_scale: true,
            sack: true,
            timestamps: true,
            initial_window: 1 << 20,
            ..TcpConfig::default()
        };
        let mut core: ConnCore<u32> = ConnCore::new(&cfg, 1000, Seq(100), 1460);
        core.remote = Some((7, 2000));
        core.state = TcpState::SynSent { retries_left: 3 };
        queue_syn(&mut core, false, VirtualTime::from_millis(250));
        let segs = staged_segments(&core);
        let h = &segs[0].header;
        assert_eq!(h.mss(), Some(1460));
        assert_eq!(h.wscale(), Some(5), "offers the shift covering a 1 MiB buffer");
        assert!(h.sack_permitted());
        assert_eq!(h.timestamps(), Some((250, 0)), "TSecr is zero on the initial SYN");
        assert_eq!(h.window, 0xffff, "a SYN window is never scaled");

        // A SYN+ACK echoes only what was negotiated: here the peer
        // offered nothing, so nothing is echoed even though we offer.
        let mut core: ConnCore<u32> = ConnCore::new(&cfg, 1000, Seq(100), 1460);
        core.remote = Some((7, 2000));
        core.state = TcpState::SynPassive { retries_left: 3 };
        queue_syn(&mut core, true, VirtualTime::ZERO);
        let segs = staged_segments(&core);
        let h = &segs[0].header;
        assert_eq!(h.wscale(), None);
        assert!(!h.sack_permitted());
        assert_eq!(h.timestamps(), None);
        assert_eq!(h.mss(), Some(1460), "MSS always rides on a SYN");
    }

    #[test]
    fn negotiated_segments_carry_timestamps_and_sack_blocks() {
        let mut core = estab_core(10_000);
        core.tcb.ts_on = true;
        core.tcb.ts_recent = 777;
        core.tcb.sack_on = true;
        core.tcb.insert_out_of_order(Seq(6000), vec![1u8; 100], false);
        queue_ack(&mut core, VirtualTime::from_millis(1234));
        let segs = staged_segments(&core);
        let h = &segs[0].header;
        assert_eq!(h.timestamps(), Some((1234, 777)));
        assert_eq!(h.sack_blocks(), &[(Seq(6000), Seq(6100))]);
    }

    #[test]
    fn ack_header_reflects_rcv_state() {
        let mut core = estab_core(1000);
        core.tcb.rcv_nxt = Seq(9999);
        queue_ack(&mut core, VirtualTime::ZERO);
        let segs = staged_segments(&core);
        assert_eq!(segs[0].header.ack, Seq(9999));
        assert_eq!(segs[0].header.window, 4096);
        assert!(segs[0].payload.is_empty());
    }

    #[test]
    fn rst_reply_rules() {
        // With ACK: RST takes its sequence from the ACK field.
        let mut seg = TcpSegment { header: TcpHeader::new(5555, 80), payload: b"x"[..].into() };
        seg.header.flags = TcpFlags::ACK;
        seg.header.ack = Seq(777);
        let rst = reset_for(80, &seg);
        assert_eq!(rst.header.seq, Seq(777));
        assert!(rst.header.flags.rst && !rst.header.flags.ack);
        assert_eq!(rst.header.src_port, 80);
        assert_eq!(rst.header.dst_port, 5555);
        // Without ACK: seq 0, ack covers the segment.
        seg.header.flags = TcpFlags::SYN;
        seg.header.seq = Seq(100);
        let rst = reset_for(80, &seg);
        assert_eq!(rst.header.seq, Seq(0));
        assert_eq!(rst.header.ack, Seq(100 + 1 + 1)); // SYN + 1 payload byte
        assert!(rst.header.flags.rst && rst.header.flags.ack);
    }

    #[test]
    fn send_buffer_full_pushes_back() {
        let cfg = TcpConfig { send_buffer: 100, nagle: false, ..TcpConfig::default() };
        let mut core: ConnCore<u32> = ConnCore::new(&cfg, 1, Seq(0), 1460);
        core.remote = Some((7, 2));
        core.state = TcpState::Estab;
        core.tcb.mss = 1000;
        core.tcb.snd_wnd = 0; // nothing drains
        assert_eq!(user_send(&cfg, &mut core, &[1; 60], VirtualTime::ZERO), 60);
        assert_eq!(user_send(&cfg, &mut core, &[1; 60], VirtualTime::ZERO), 40);
        assert_eq!(user_send(&cfg, &mut core, &[1; 60], VirtualTime::ZERO), 0);
    }
}
