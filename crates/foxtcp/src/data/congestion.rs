//! The congestion-control seam: every write to `cwnd`/`ssthresh` in the
//! stack happens here, behind the [`CongestionControl`] trait.
//!
//! The paper's claim is that a structured stack keeps extensions local;
//! this module is the test for congestion control. The Resend module
//! reports *events* (an ACK of new data, the third duplicate, a partial
//! ACK, an RTO) and the algorithm decides the windows. Two algorithms
//! prove the seam: [`Reno`] (NewReno, RFC 5681/6582 — bit-for-bit the
//! arithmetic the stack always had) and [`Cubic`] (RFC 8312 in integer
//! fixed-point, so the simulation stays deterministic).
//!
//! Enforcement is lexical: the `cc_write` foxlint rule forbids
//! `cwnd`/`ssthresh` assignments outside this module, the same way
//! `tcb_write` fences the TCB as a whole.

use crate::tcb::Tcb;
use foxbasis::time::VirtualTime;

/// Algorithm selector carried by [`crate::TcpConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CcAlg {
    /// NewReno (RFC 5681 slow start / congestion avoidance with the
    /// RFC 6582 recovery refinements) — the default, and byte-identical
    /// to the pre-seam arithmetic.
    #[default]
    Reno,
    /// CUBIC (RFC 8312), in integer fixed-point.
    Cubic,
}

/// The mutable window view an algorithm operates on. `cwnd == 0` means
/// congestion control is disabled for the connection (the ablation
/// switch); algorithms must leave a zero window untouched.
#[derive(Debug)]
pub struct CcWindow {
    /// Congestion window, bytes.
    pub cwnd: u32,
    /// Slow-start threshold, bytes.
    pub ssthresh: u32,
}

/// The seam the Resend module talks through. One method per
/// congestion-relevant event; implementations own all window writes.
pub trait CongestionControl {
    /// Connection established: set the initial window.
    fn init(&mut self, w: &mut CcWindow, mss: u32);
    /// `bytes_acked` new bytes acknowledged outside recovery.
    fn on_ack(&mut self, w: &mut CcWindow, mss: u32, bytes_acked: u32, now: VirtualTime);
    /// A duplicate ACK while already recovering: a segment left the
    /// network, so the window may inflate.
    fn dup_ack_inflate(&mut self, w: &mut CcWindow, mss: u32);
    /// The third duplicate ACK: entering fast recovery with `flight`
    /// bytes outstanding.
    fn enter_recovery(&mut self, w: &mut CcWindow, mss: u32, flight: u32, now: VirtualTime);
    /// A partial ACK during recovery acknowledged `bytes_acked`.
    fn partial_ack(&mut self, w: &mut CcWindow, mss: u32, bytes_acked: u32);
    /// The ACK covering the recovery point: recovery ends.
    fn exit_recovery(&mut self, w: &mut CcWindow, mss: u32, now: VirtualTime);
    /// Retransmission timeout with `flight` bytes outstanding.
    fn on_rto(&mut self, w: &mut CcWindow, mss: u32, flight: u32, now: VirtualTime);
}

/// NewReno. Stateless — the windows themselves are the whole state.
#[derive(Clone, Debug, Default)]
pub struct Reno;

impl CongestionControl for Reno {
    fn init(&mut self, w: &mut CcWindow, mss: u32) {
        w.cwnd = mss;
        w.ssthresh = u32::MAX;
    }

    fn on_ack(&mut self, w: &mut CcWindow, mss: u32, bytes_acked: u32, _now: VirtualTime) {
        // Appropriate Byte Counting (RFC 3465): growth is credited by
        // bytes actually acknowledged, capped at one MSS per ACK, so an
        // attacker dividing one segment's ACK into many sub-MSS ACKs
        // earns no more window than the single honest ACK would. For
        // full-segment ACKs (bytes_acked >= mss) the arithmetic is
        // bit-identical to the historical ack-counted code.
        let credit = bytes_acked.min(mss);
        if w.cwnd < w.ssthresh {
            w.cwnd = w.cwnd.saturating_add(credit); // slow start
        } else {
            w.cwnd = w.cwnd.saturating_add(((mss.saturating_mul(credit)) / w.cwnd).max(1));
        }
    }

    fn dup_ack_inflate(&mut self, w: &mut CcWindow, mss: u32) {
        w.cwnd = w.cwnd.saturating_add(mss);
    }

    fn enter_recovery(&mut self, w: &mut CcWindow, mss: u32, flight: u32, _now: VirtualTime) {
        w.ssthresh = (flight / 2).max(2 * mss);
        if w.cwnd > 0 {
            // ssthresh plus the three segments the duplicates ACKed.
            w.cwnd = w.ssthresh.saturating_add(3 * mss);
        }
    }

    fn partial_ack(&mut self, w: &mut CcWindow, mss: u32, bytes_acked: u32) {
        w.cwnd = w.cwnd.saturating_sub(bytes_acked).saturating_add(mss).max(mss);
    }

    fn exit_recovery(&mut self, w: &mut CcWindow, mss: u32, _now: VirtualTime) {
        w.cwnd = w.ssthresh.max(mss);
    }

    fn on_rto(&mut self, w: &mut CcWindow, mss: u32, flight: u32, _now: VirtualTime) {
        w.ssthresh = (flight / 2).max(2 * mss);
        if w.cwnd > 0 {
            w.cwnd = mss; // back to slow start
        }
    }
}

/// CUBIC's multiplicative-decrease factor β = 717/1024 ≈ 0.7.
const CUBIC_BETA_NUM: u64 = 717;
const CUBIC_BETA_DEN: u64 = 1024;

/// CUBIC (RFC 8312), integer fixed-point. The cubic function
/// `W(t) = C·(t−K)³ + W_max` is evaluated in milliseconds and
/// MSS-units with C = 0.4, so the target window per ACK is exact
/// integer arithmetic — no floats, fully deterministic.
#[derive(Clone, Debug, Default)]
pub struct Cubic {
    /// Window size (bytes) just before the last reduction.
    w_max: u32,
    /// Start of the current congestion-avoidance epoch.
    epoch: Option<VirtualTime>,
}

/// Integer cube root by binary search (`⌊n^(1/3)⌋`).
fn icbrt(n: u64) -> u64 {
    // ∛(2^64) < 2^22, so this range covers every u64; overflow in mid³
    // (checked, not saturating) correctly reads as "too big".
    let (mut lo, mut hi) = (0u64, 1u64 << 22);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        let cube = mid.checked_mul(mid).and_then(|sq| sq.checked_mul(mid));
        if cube.is_some_and(|c| c <= n) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

impl Cubic {
    /// The RFC 8312 target window at `elapsed` ms into the epoch, in
    /// bytes. `K = ∛(W_max·(1−β)/C)` seconds; windows in MSS units.
    fn target(&self, mss: u32, elapsed_ms: u64) -> u32 {
        let mss64 = u64::from(mss.max(1));
        let w_max_mss = (u64::from(self.w_max) / mss64).max(1);
        // K³ = W_max·(1−β)/C = W_max·0.3/0.4 = 0.75·W_max  (seconds³)
        // In ms: K_ms³ = 0.75e9·W_max.
        let k_ms = icbrt(750_000_000u64.saturating_mul(w_max_mss));
        let d = elapsed_ms as i64 - k_ms as i64;
        let d = d.clamp(-1_000_000, 1_000_000); // bound the cube
        let cube = (d.unsigned_abs()).pow(3);
        // C·d³ with C = 0.4 and d in ms: 0.4/1e9 = 4/1e10 (MSS units).
        let delta_mss = cube.saturating_mul(4) / 10_000_000_000;
        let w_mss =
            if d < 0 { w_max_mss.saturating_sub(delta_mss) } else { w_max_mss.saturating_add(delta_mss) };
        u32::try_from(w_mss.saturating_mul(mss64)).unwrap_or(u32::MAX)
    }
}

impl CongestionControl for Cubic {
    fn init(&mut self, w: &mut CcWindow, mss: u32) {
        w.cwnd = mss;
        w.ssthresh = u32::MAX;
        self.w_max = 0;
        self.epoch = None;
    }

    fn on_ack(&mut self, w: &mut CcWindow, mss: u32, bytes_acked: u32, now: VirtualTime) {
        if w.cwnd < w.ssthresh {
            // Byte-counted slow start, as Reno (RFC 3465 defense
            // against ACK division).
            w.cwnd = w.cwnd.saturating_add(bytes_acked.min(mss));
            return;
        }
        let epoch = *self.epoch.get_or_insert(now);
        if self.w_max == 0 {
            // No loss yet: congestion avoidance from the current window.
            self.w_max = w.cwnd;
        }
        // As in Reno, an ACK never earns more window than it acknowledged
        // bytes (ACK-division defense); full-segment ACKs are unchanged.
        let credit = bytes_acked.min(mss);
        let target = self.target(mss, now.saturating_since(epoch).as_millis());
        if target > w.cwnd {
            // Spread the climb over roughly one window of ACKs.
            let per_ack = ((target - w.cwnd) / (w.cwnd / mss.max(1)).max(1)).max(1);
            w.cwnd = w.cwnd.saturating_add(per_ack.min(credit));
        } else {
            // At/above the curve: probe very slowly (one MSS per window).
            w.cwnd = w.cwnd.saturating_add(((mss * mss / w.cwnd.max(1)).max(1) / 4 + 1).min(credit));
        }
    }

    fn dup_ack_inflate(&mut self, w: &mut CcWindow, mss: u32) {
        w.cwnd = w.cwnd.saturating_add(mss);
    }

    fn enter_recovery(&mut self, w: &mut CcWindow, mss: u32, _flight: u32, _now: VirtualTime) {
        self.w_max = w.cwnd.max(mss);
        let reduced = (u64::from(w.cwnd) * CUBIC_BETA_NUM / CUBIC_BETA_DEN) as u32;
        w.ssthresh = reduced.max(2 * mss);
        if w.cwnd > 0 {
            w.cwnd = w.ssthresh.saturating_add(3 * mss);
        }
        self.epoch = None;
    }

    fn partial_ack(&mut self, w: &mut CcWindow, mss: u32, bytes_acked: u32) {
        w.cwnd = w.cwnd.saturating_sub(bytes_acked).saturating_add(mss).max(mss);
    }

    fn exit_recovery(&mut self, w: &mut CcWindow, mss: u32, now: VirtualTime) {
        w.cwnd = w.ssthresh.max(mss);
        self.epoch = Some(now); // the cubic clock restarts at the plateau
    }

    fn on_rto(&mut self, w: &mut CcWindow, mss: u32, _flight: u32, _now: VirtualTime) {
        self.w_max = w.cwnd.max(mss);
        let reduced = (u64::from(w.cwnd) * CUBIC_BETA_NUM / CUBIC_BETA_DEN) as u32;
        w.ssthresh = reduced.max(2 * mss);
        if w.cwnd > 0 {
            w.cwnd = mss;
        }
        self.epoch = None;
    }
}

/// The per-connection algorithm instance. An enum rather than a
/// `Box<dyn>` so the TCB stays `Clone`-free, allocation-free and the
/// dispatch deterministic; both variants implement [`CongestionControl`]
/// and the enum forwards.
#[derive(Clone, Debug)]
pub enum CcMachine {
    /// NewReno state.
    Reno(Reno),
    /// CUBIC state.
    Cubic(Cubic),
}

impl Default for CcMachine {
    fn default() -> Self {
        CcMachine::Reno(Reno)
    }
}

impl CcMachine {
    /// An instance of the configured algorithm.
    pub fn new(alg: CcAlg) -> CcMachine {
        match alg {
            CcAlg::Reno => CcMachine::Reno(Reno),
            CcAlg::Cubic => CcMachine::Cubic(Cubic::default()),
        }
    }

    fn as_cc(&mut self) -> &mut dyn CongestionControl {
        match self {
            CcMachine::Reno(r) => r,
            CcMachine::Cubic(c) => c,
        }
    }
}

// ---------------------------------------------------------------------
// The module-level entry points the rest of the stack calls. These are
// the *only* places `tcb.cwnd` / `tcb.ssthresh` are assigned (enforced
// by the `cc_write` foxlint rule); each replicates the guard structure
// the inline Reno code had, so behavior without options is unchanged.
// ---------------------------------------------------------------------

/// Runs `f` against the TCB's windows through the algorithm seam.
fn with_windows<P>(tcb: &mut Tcb<P>, f: impl FnOnce(&mut dyn CongestionControl, &mut CcWindow, u32)) {
    let mut w = CcWindow { cwnd: tcb.cwnd, ssthresh: tcb.ssthresh };
    let mss = tcb.mss;
    f(tcb.cc.as_cc(), &mut w, mss);
    tcb.cwnd = w.cwnd;
    tcb.ssthresh = w.ssthresh;
}

/// Connection established: initial window (one MSS) and cleared
/// threshold.
pub fn init<P>(tcb: &mut Tcb<P>) {
    with_windows(tcb, |cc, w, mss| cc.init(w, mss));
}

/// New data acknowledged outside recovery: grow the window.
pub fn on_ack<P>(tcb: &mut Tcb<P>, bytes_acked: u32, now: VirtualTime) {
    if tcb.cwnd == 0 || bytes_acked == 0 {
        return;
    }
    with_windows(tcb, |cc, w, mss| cc.on_ack(w, mss, bytes_acked, now));
}

/// A duplicate ACK while recovering: inflate.
pub fn dup_ack_inflate<P>(tcb: &mut Tcb<P>) {
    if tcb.cwnd == 0 {
        return;
    }
    with_windows(tcb, |cc, w, mss| cc.dup_ack_inflate(w, mss));
}

/// Third duplicate ACK: recovery entry (ssthresh moves even with the
/// window ablated, matching the historical behavior).
pub fn enter_recovery<P>(tcb: &mut Tcb<P>, now: VirtualTime) {
    let flight = tcb.flight_size();
    with_windows(tcb, |cc, w, mss| cc.enter_recovery(w, mss, flight, now));
}

/// Partial ACK during recovery: deflate by what was acknowledged.
pub fn partial_ack<P>(tcb: &mut Tcb<P>, bytes_acked: u32) {
    if tcb.cwnd == 0 {
        return;
    }
    with_windows(tcb, |cc, w, mss| cc.partial_ack(w, mss, bytes_acked));
}

/// Recovery point acknowledged: deflate to ssthresh.
pub fn exit_recovery<P>(tcb: &mut Tcb<P>, now: VirtualTime) {
    if tcb.cwnd == 0 {
        return;
    }
    with_windows(tcb, |cc, w, mss| cc.exit_recovery(w, mss, now));
}

/// Retransmission timeout: collapse to slow start.
pub fn on_rto<P>(tcb: &mut Tcb<P>, now: VirtualTime) {
    let flight = tcb.flight_size();
    with_windows(tcb, |cc, w, mss| cc.on_rto(w, mss, flight, now));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(cwnd: u32, ssthresh: u32) -> CcWindow {
        CcWindow { cwnd, ssthresh }
    }

    #[test]
    fn reno_matches_historical_arithmetic() {
        let mut reno = Reno;
        let mut win = w(0, 0);
        reno.init(&mut win, 1000);
        assert_eq!((win.cwnd, win.ssthresh), (1000, u32::MAX));
        // Slow start doubles per window (one MSS per ACK).
        reno.on_ack(&mut win, 1000, 1000, VirtualTime::ZERO);
        assert_eq!(win.cwnd, 2000);
        // Above ssthresh: additive increase mss²/cwnd.
        win.ssthresh = 2000;
        reno.on_ack(&mut win, 1000, 1000, VirtualTime::ZERO);
        assert_eq!(win.cwnd, 2000 + 1000 * 1000 / 2000);
        // Recovery entry: half the flight, floored, plus three segments.
        let mut win = w(6000, u32::MAX);
        reno.enter_recovery(&mut win, 1000, 3000, VirtualTime::ZERO);
        assert_eq!((win.cwnd, win.ssthresh), (5000, 2000));
        reno.dup_ack_inflate(&mut win, 1000);
        assert_eq!(win.cwnd, 6000);
        reno.partial_ack(&mut win, 1000, 1000);
        assert_eq!(win.cwnd, 6000);
        reno.exit_recovery(&mut win, 1000, VirtualTime::ZERO);
        assert_eq!(win.cwnd, 2000);
        let mut win = w(8000, u32::MAX);
        reno.on_rto(&mut win, 1000, 4000, VirtualTime::ZERO);
        assert_eq!((win.cwnd, win.ssthresh), (1000, 2000));
    }

    #[test]
    fn ack_division_earns_bytes_not_acks() {
        // Savage et al.'s ACK-division attack: the receiver splits one
        // segment's acknowledgement into many sub-MSS ACKs. Byte
        // counting makes the 10 division ACKs worth exactly what the
        // one honest ACK was worth — the acknowledged bytes.
        let mut reno = Reno;
        let mut honest = w(1000, u32::MAX);
        reno.on_ack(&mut honest, 1000, 1000, VirtualTime::ZERO);
        let mut attacked = w(1000, u32::MAX);
        for _ in 0..10 {
            reno.on_ack(&mut attacked, 1000, 100, VirtualTime::ZERO);
        }
        assert_eq!(honest.cwnd, attacked.cwnd, "division earned nothing extra");
        // Congestion avoidance: sub-MSS ACKs earn proportionally less.
        let mut ca = w(4000, 2000);
        reno.on_ack(&mut ca, 1000, 1000, VirtualTime::ZERO);
        assert_eq!(ca.cwnd, 4000 + 1000 * 1000 / 4000);
        let mut ca_div = w(4000, 2000);
        reno.on_ack(&mut ca_div, 1000, 100, VirtualTime::ZERO);
        assert_eq!(ca_div.cwnd, 4000 + 1000 * 100 / 4000);
        // Cubic's slow start is byte-counted the same way.
        let mut cubic = Cubic::default();
        let mut win = w(1000, 10_000);
        for _ in 0..10 {
            cubic.on_ack(&mut win, 1000, 100, VirtualTime::ZERO);
        }
        assert_eq!(win.cwnd, 2000, "ten 100-byte ACKs = one 1000-byte ACK");
    }

    #[test]
    fn icbrt_exact_and_floor() {
        assert_eq!(icbrt(0), 0);
        assert_eq!(icbrt(1), 1);
        assert_eq!(icbrt(26), 2);
        assert_eq!(icbrt(27), 3);
        assert_eq!(icbrt(1_000_000_000), 1000);
        assert_eq!(icbrt(u64::MAX), 2_642_245);
    }

    #[test]
    fn cubic_reduces_by_beta_and_regrows_toward_w_max() {
        let mut cubic = Cubic::default();
        let mut win = w(0, 0);
        cubic.init(&mut win, 1000);
        assert_eq!(win.cwnd, 1000);
        // Loss at 100 KB: β-reduction, not a halving.
        let mut win = w(100_000, u32::MAX);
        cubic.enter_recovery(&mut win, 1000, 100_000, VirtualTime::ZERO);
        assert_eq!(win.ssthresh, (100_000u64 * 717 / 1024) as u32);
        cubic.exit_recovery(&mut win, 1000, VirtualTime::from_millis(1000));
        assert_eq!(win.cwnd, win.ssthresh);
        // The concave climb approaches W_max = 100 KB as time passes.
        let start = win.cwnd;
        let mut now = VirtualTime::from_millis(1000);
        for _ in 0..20_000 {
            now += foxbasis::time::VirtualDuration::from_millis(1);
            cubic.on_ack(&mut win, 1000, 1000, now);
        }
        assert!(win.cwnd > start, "the window must grow: {} -> {}", start, win.cwnd);
        assert!(win.cwnd >= 90_000, "approaches W_max: {}", win.cwnd);
    }

    #[test]
    fn cubic_slow_starts_below_ssthresh() {
        let mut cubic = Cubic::default();
        let mut win = w(1000, 10_000);
        cubic.on_ack(&mut win, 1000, 1000, VirtualTime::ZERO);
        assert_eq!(win.cwnd, 2000, "slow start is unchanged");
    }

    #[test]
    fn machine_dispatches_and_guards_ablation() {
        let mut tcb: Tcb<()> = Tcb::new(foxbasis::seq::Seq(0), 4096, 4096);
        tcb.mss = 1000;
        // cwnd == 0 (ablated): growth and inflation are no-ops.
        on_ack(&mut tcb, 1000, VirtualTime::ZERO);
        dup_ack_inflate(&mut tcb);
        assert_eq!(tcb.cwnd, 0);
        init(&mut tcb);
        assert_eq!((tcb.cwnd, tcb.ssthresh), (1000, u32::MAX));
        tcb.snd_nxt = tcb.snd_una + 4000;
        enter_recovery(&mut tcb, VirtualTime::ZERO);
        assert_eq!((tcb.cwnd, tcb.ssthresh), (5000, 2000));
    }
}
