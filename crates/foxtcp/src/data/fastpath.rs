//! The fast path (paper §4): "We have however implemented fast-path
//! receive and send routines which handle the normal cases quickly, and
//! defer to the full code for the less common cases."
//!
//! This is Van Jacobson's header prediction, specialized to the two
//! common cases of an established bulk connection:
//!
//! 1. a pure in-sequence ACK of new data with no window change — the
//!    sender's steady state;
//! 2. a pure in-sequence data segment with nothing new in its ACK field
//!    — the receiver's steady state.
//!
//! Anything else returns `false` and falls through to the Receive
//! module's full SEGMENT-ARRIVES DAG.

use crate::action::{TcpAction, TimerKind};
use crate::resend;
use crate::send;
use crate::tcb::TcpState;
use crate::{ConnCore, TcpConfig};
use foxbasis::time::VirtualTime;
use foxwire::tcp::TcpSegment;
use std::fmt::Debug;

/// Attempts fast-path processing; returns `true` if the segment was
/// fully handled.
pub fn try_fast<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    seg: &TcpSegment,
    now: VirtualTime,
) -> bool {
    if core.state != TcpState::Estab {
        return false;
    }
    let h = &seg.header;
    // Header prediction: flags must be exactly ACK, sequence must be
    // exactly what we expect, and the window must not change.
    if h.flags.syn || h.flags.fin || h.flags.rst || h.flags.urg || !h.flags.ack {
        return false;
    }
    if h.seq != core.tcb.rcv_nxt {
        return false;
    }
    // The wire field is compared post-scaling: with wscale negotiated an
    // unchanged 16-bit field still predicts an unchanged true window.
    if core.tcb.scale_peer_window(h.window, false) != core.tcb.snd_wnd {
        return false;
    }
    // RFC 7323's fast-path timestamp check: PAWS-reject old segments,
    // and keep TS.Recent / the pending echo fresh for RTTM.
    if !super::transfer::process_timestamps(core, h, now) {
        return true; // dropped and re-ACKed: fully handled
    }

    if seg.payload.is_empty() {
        // Case 1: pure ACK of new data.
        if h.ack.in_open_closed(core.tcb.snd_una, core.tcb.snd_nxt) {
            resend::process_ack(cfg, core, h.ack, now);
            // The slow path runs update_send_window on every acceptable
            // ACK. The window is unchanged here (predicate above), but
            // WL1/WL2 must still advance or they go stale: once rcv_nxt
            // outruns a stale snd_wl1 by 2^31, the wrapping comparison
            // in the WL rules inverts and a legitimate later window
            // update is rejected.
            core.tcb.snd_wl1 = h.seq;
            core.tcb.snd_wl2 = h.ack;
            send::maybe_send(cfg, core, now);
            return true;
        }
        false
    } else {
        // Case 2: pure in-order data, nothing new acknowledged, and the
        // whole payload fits our buffer.
        if h.ack != core.tcb.snd_una {
            return false;
        }
        if core.tcb.recv_buf.free() < seg.payload.len() {
            return false;
        }
        if !core.tcb.out_of_order.is_empty() {
            return false; // let the full path manage reassembly
        }
        let tcb = &mut core.tcb;
        let took = tcb.recv_buf.write(&seg.payload.bytes());
        debug_assert_eq!(took, seg.payload.len());
        tcb.rcv_nxt += took as u32;
        tcb.bytes_since_ack += took as u32;
        tcb.segs_since_ack += 1;
        // Keep WL1/WL2 fresh exactly as the slow path's
        // update_send_window would (window unchanged by predicate).
        tcb.snd_wl1 = h.seq;
        tcb.snd_wl2 = h.ack;
        // The copy into the user's vector — the same user-boundary copy
        // the slow path pays. Deliberately outside the copy counter:
        // the paper keeps the user copy out of its benchmarks.
        tcb.push_action(TcpAction::UserData(seg.payload.bytes().to_vec()));
        let th = cfg.ack_threshold();
        match cfg.delayed_ack_ms {
            Some(ms) if tcb.segs_since_ack < th && tcb.bytes_since_ack < th * tcb.mss => {
                tcb.ack_pending = true;
                tcb.push_action(TcpAction::SetTimer(TimerKind::DelayedAck, ms));
            }
            _ => {
                send::queue_ack(core, now);
                core.tcb.push_action(TcpAction::ClearTimer(TimerKind::DelayedAck));
            }
        }
        // The slow path ends every non-duplicate segment with a send
        // attempt; without it, data queued while this (bidirectional)
        // segment was processed would sit until the next timer.
        send::maybe_send(cfg, core, now);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxbasis::seq::Seq;
    use foxwire::tcp::{TcpFlags, TcpHeader};

    fn cfg() -> TcpConfig {
        TcpConfig::default()
    }

    fn estab() -> ConnCore<u32> {
        let mut core: ConnCore<u32> = ConnCore::new(&cfg(), 1000, Seq(100), 1460);
        core.remote = Some((7, 2000));
        core.state = TcpState::Estab;
        core.tcb.mss = 1000;
        core.tcb.snd_wnd = 4096;
        core.tcb.rcv_nxt = Seq(5000);
        core.tcb.snd_una = Seq(100);
        core.tcb.snd_nxt = Seq(100);
        core
    }

    fn seg(seq: u32, ack: u32, window: u16, payload: &[u8]) -> TcpSegment {
        let mut h = TcpHeader::new(2000, 1000);
        h.seq = Seq(seq);
        h.ack = Seq(ack);
        h.flags = TcpFlags::ACK;
        h.window = window;
        TcpSegment { header: h, payload: payload.into() }
    }

    #[test]
    fn pure_ack_taken_fast() {
        let mut core = estab();
        // One outstanding segment.
        core.tcb.send_buf.write(&[1; 500]);
        core.tcb.snd_nxt = Seq(600);
        core.tcb.resend_queue.push_back(crate::tcb::SentSegment {
            seq: Seq(100),
            payload: vec![1u8; 500].into(),
            syn: false,
            fin: false,
        });
        assert!(try_fast(&cfg(), &mut core, &seg(5000, 600, 4096, b""), VirtualTime::ZERO));
        assert_eq!(core.tcb.snd_una, Seq(600));
        assert!(core.tcb.resend_queue.is_empty());
    }

    #[test]
    fn pure_data_taken_fast() {
        let mut core = estab();
        let payload = vec![9u8; 700];
        assert!(try_fast(&cfg(), &mut core, &seg(5000, 100, 4096, &payload), VirtualTime::ZERO));
        assert_eq!(core.tcb.rcv_nxt, Seq(5700));
        let tags: Vec<_> = core.tcb.to_do.borrow_mut().drain_all().iter().map(|a| a.tag()).collect();
        assert!(tags.contains(&"User_Data"));
    }

    #[test]
    fn rejects_non_estab() {
        let mut core = estab();
        core.state = TcpState::FinWait1 { fin_acked: false };
        assert!(!try_fast(&cfg(), &mut core, &seg(5000, 100, 4096, b"x"), VirtualTime::ZERO));
    }

    #[test]
    fn rejects_flag_anomalies() {
        let mut core = estab();
        let mut s = seg(5000, 100, 4096, b"");
        s.header.flags.fin = true;
        assert!(!try_fast(&cfg(), &mut core, &s, VirtualTime::ZERO));
        let mut s = seg(5000, 100, 4096, b"");
        s.header.flags.syn = true;
        assert!(!try_fast(&cfg(), &mut core, &s, VirtualTime::ZERO));
        let mut s = seg(5000, 100, 4096, b"");
        s.header.flags.ack = false;
        assert!(!try_fast(&cfg(), &mut core, &s, VirtualTime::ZERO));
    }

    #[test]
    fn rejects_out_of_sequence() {
        let mut core = estab();
        assert!(!try_fast(&cfg(), &mut core, &seg(5001, 100, 4096, b"late"), VirtualTime::ZERO));
    }

    #[test]
    fn rejects_window_change() {
        let mut core = estab();
        assert!(!try_fast(&cfg(), &mut core, &seg(5000, 100, 2048, b""), VirtualTime::ZERO));
    }

    #[test]
    fn rejects_old_ack_as_pure_ack() {
        let mut core = estab();
        core.tcb.snd_una = Seq(200);
        core.tcb.snd_nxt = Seq(600);
        assert!(!try_fast(&cfg(), &mut core, &seg(5000, 200, 4096, b""), VirtualTime::ZERO));
    }

    #[test]
    fn rejects_data_when_reassembly_pending() {
        let mut core = estab();
        core.tcb.insert_out_of_order(Seq(6000), vec![1; 10], false);
        assert!(!try_fast(&cfg(), &mut core, &seg(5000, 100, 4096, b"abc"), VirtualTime::ZERO));
    }

    #[test]
    fn fast_path_advances_wl_state() {
        // Both fast-path cases must leave snd_wl1/snd_wl2 exactly where
        // the slow path's update_send_window would.
        let mut core = estab();
        core.tcb.send_buf.write(&[1; 500]);
        core.tcb.snd_nxt = Seq(600);
        core.tcb.resend_queue.push_back(crate::tcb::SentSegment {
            seq: Seq(100),
            payload: vec![1u8; 500].into(),
            syn: false,
            fin: false,
        });
        assert!(try_fast(&cfg(), &mut core, &seg(5000, 600, 4096, b""), VirtualTime::ZERO));
        assert_eq!(core.tcb.snd_wl1, Seq(5000), "case 1 must advance WL1");
        assert_eq!(core.tcb.snd_wl2, Seq(600), "case 1 must advance WL2");

        let mut core = estab();
        assert!(try_fast(&cfg(), &mut core, &seg(5000, 100, 4096, &[9u8; 700]), VirtualTime::ZERO));
        assert_eq!(core.tcb.snd_wl1, Seq(5000), "case 2 must advance WL1");
        assert_eq!(core.tcb.snd_wl2, Seq(100), "case 2 must advance WL2");
    }

    #[test]
    fn window_update_accepted_after_long_fast_path_run() {
        // Regression: header prediction never advanced snd_wl1, so once
        // rcv_nxt outran the stale value by >= 2^31 the wrapping WL
        // comparison inverted and a legitimate window update from the
        // peer was silently refused.
        let mut core = estab();
        core.tcb.snd_wl1 = Seq(5000u32.wrapping_sub(0x8000_0001));
        core.tcb.snd_wl2 = Seq(100);
        // The stale WL1 now compares "ahead of" the current sequence.
        assert!(!core.tcb.snd_wl1.lt(Seq(5000)));

        // A fast-path data segment (what a long bulk receive is made of).
        assert!(try_fast(&cfg(), &mut core, &seg(5000, 100, 4096, &[7u8; 100]), VirtualTime::ZERO));

        // The peer opens its window: a pure ACK with a new window. The
        // fast path refuses it (window change) and the full DAG must
        // accept the update.
        let upd = seg(5100, 100, 8192, b"");
        let _ = crate::receive::segment_arrives(&cfg(), &mut core, upd, VirtualTime::ZERO);
        assert_eq!(
            core.tcb.snd_wnd, 8192,
            "a legitimate window update must not be rejected by stale WL state"
        );
    }

    #[test]
    fn fast_path_data_segment_flushes_queued_sends_like_slow_path() {
        // The slow path ends every acceptable segment with maybe_send;
        // the fast path's data case skipped it, stranding queued data on
        // bidirectional connections until the next timer or ACK.
        let mut core = estab();
        let taken = send::user_send(&cfg(), &mut core, &[5u8; 300], VirtualTime::ZERO);
        assert_eq!(taken, 300);
        // user_send itself sent what the window allowed; drop those
        // actions and pretend the window just kept us from sending more.
        core.tcb.to_do.borrow_mut().drain_all();
        core.tcb.snd_nxt = core.tcb.snd_una; // nothing in flight yet
        core.tcb.resend_queue.clear();

        assert!(try_fast(&cfg(), &mut core, &seg(5000, 100, 4096, &[9u8; 200]), VirtualTime::ZERO));
        let tags: Vec<_> = core.tcb.to_do.borrow_mut().drain_all().iter().map(|a| a.tag()).collect();
        assert!(
            tags.contains(&"Send_Segment"),
            "fast path must attempt to send queued data like the slow path, got {tags:?}"
        );
    }

    #[test]
    fn scaled_window_predicts_correctly() {
        // snd_wnd 4096 with shift 4 means the wire field reads 256; the
        // fast path must compare post-scaling or every segment of a
        // wscale connection falls to the slow path.
        let mut core = estab();
        core.tcb.wscale_on = true;
        core.tcb.snd_wscale = 4;
        assert!(try_fast(&cfg(), &mut core, &seg(5000, 100, 256, &[3u8; 50]), VirtualTime::ZERO));
        assert_eq!(core.tcb.rcv_nxt, Seq(5050));
        // And a genuinely changed window still falls through.
        let mut core = estab();
        core.tcb.wscale_on = true;
        core.tcb.snd_wscale = 4;
        assert!(!try_fast(&cfg(), &mut core, &seg(5000, 100, 128, b""), VirtualTime::ZERO));
    }

    #[test]
    fn paws_checked_on_fast_path() {
        use foxwire::tcp::TcpOption;
        let mut core = estab();
        core.tcb.ts_on = true;
        core.tcb.ts_recent = 500;
        let mut s = seg(5000, 100, 4096, &[1u8; 10]);
        s.header.options.push(TcpOption::Timestamps(499, 0));
        assert!(try_fast(&cfg(), &mut core, &s, VirtualTime::ZERO), "PAWS drop is a handled segment");
        assert_eq!(core.tcb.rcv_nxt, Seq(5000), "old-timestamp data not consumed");
        let mut s = seg(5000, 100, 4096, &[1u8; 10]);
        s.header.options.push(TcpOption::Timestamps(501, 0));
        assert!(try_fast(&cfg(), &mut core, &s, VirtualTime::ZERO));
        assert_eq!(core.tcb.rcv_nxt, Seq(5010));
        assert_eq!(core.tcb.ts_recent, 501);
    }

    #[test]
    fn paws_drop_on_fast_path_emits_duplicate_ack() {
        // Regression pin for the "dropped and re-ACKed: fully handled"
        // claim above: a PAWS-rejected segment taken on the fast path
        // must leave a duplicate ACK in the to_do queue, exactly as the
        // slow path's PAWS drop does (RFC 7323 §5.3: "Send an
        // acknowledgment in reply"). The engine drains to_do after
        // try_fast returns, so an action here *is* an emitted segment.
        use foxwire::tcp::TcpOption;
        let mut core = estab();
        core.tcb.ts_on = true;
        core.tcb.ts_recent = 500;
        let mut s = seg(5000, 100, 4096, &[1u8; 10]);
        s.header.options.push(TcpOption::Timestamps(499, 0));
        assert!(try_fast(&cfg(), &mut core, &s, VirtualTime::ZERO));
        let actions = core.tcb.to_do.borrow_mut().drain_all();
        let acks: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                TcpAction::SendSegment(seg) => Some(&seg.header),
                _ => None,
            })
            .collect();
        assert_eq!(acks.len(), 1, "exactly one re-ACK must be staged, got {actions:?}");
        let h = acks[0];
        assert!(h.flags.ack && !h.flags.syn && !h.flags.fin && !h.flags.rst);
        assert_eq!(h.ack, Seq(5000), "the re-ACK must re-assert rcv_nxt");
        assert_eq!(h.seq, Seq(100), "the re-ACK carries snd_nxt");

        // And the same drop on the *slow* path stages the same ACK —
        // the parity the fast path's early return claims.
        let mut core = estab();
        core.tcb.ts_on = true;
        core.tcb.ts_recent = 500;
        let mut s = seg(5000, 100, 4096, &[1u8; 10]);
        s.header.options.push(TcpOption::Timestamps(499, 0));
        let _ = crate::receive::segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        let actions = core.tcb.to_do.borrow_mut().drain_all();
        let slow_acks: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                TcpAction::SendSegment(seg) => Some(seg.header.ack),
                _ => None,
            })
            .collect();
        assert_eq!(slow_acks, vec![Seq(5000)], "slow-path PAWS drop must stage the same re-ACK");
    }

    #[test]
    fn rejects_data_when_buffer_tight() {
        let mut core = estab();
        let fill = core.tcb.recv_buf.capacity() - 10;
        core.tcb.recv_buf.write(&vec![0u8; fill]);
        assert!(!try_fast(&cfg(), &mut core, &seg(5000, 100, 4096, &[1u8; 20]), VirtualTime::ZERO));
    }
}
