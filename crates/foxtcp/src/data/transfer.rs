//! The data-path half of SEGMENT-ARRIVES, and the seams control uses
//! to drive it.
//!
//! [`crate::control::segment`] owns the RFC 793 branch structure and
//! every `TcpState` write; the checks that move sequence numbers,
//! windows, and bytes — PAWS/timestamps, sequence acceptability, the
//! send-window update rule, text processing, urgent pointers — live
//! here, where the `tcb_write` whitelist (and the `ctrl_data` rule's
//! inverse) permits them. The two halves communicate narrowly:
//!
//! * control hands data an [`EstablishedHandle`] (minted next to the
//!   `TcpState::Estab` write, nowhere else) to run [`establish`], the
//!   data-path half of the transition;
//! * data reports stream-level events back as [`DataEvent`]s — e.g.
//!   [`consume_fin`] advances `rcv_nxt` over a FIN and returns
//!   [`DataEvent::FinReceived`]; *control* then decides which closing
//!   state that implies. Nothing in this module writes `TcpState`.

use crate::action::{TcpAction, TimerKind};
use crate::control::EstablishedHandle;
use crate::data::{congestion, send};
use crate::tcb::TcpState;
use crate::{ConnCore, TcpConfig};
use foxbasis::buf::PacketBuf;
use foxbasis::seq::Seq;
use foxbasis::time::VirtualTime;
use foxwire::tcp::{TcpHeader, TcpSegment};
use std::fmt::Debug;

/// What the data path observed while consuming a segment — reported
/// back to control, which alone maps stream events onto state
/// transitions.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum DataEvent {
    /// The peer's FIN was consumed at the left window edge: no more
    /// data will arrive on this stream.
    FinReceived,
}

/// SYN-time option negotiation (RFC 7323 §2.5, RFC 2018 §2): an option
/// turns on only when *we* offered it (config) *and* the peer's SYN (or
/// SYN+ACK) carries it. A withheld option is cleanly off — every window
/// stays 16-bit, no SACK blocks are sent or consumed, no timestamps
/// ride on segments.
fn negotiate_syn_options<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>, h: &TcpHeader) {
    debug_assert!(h.flags.syn);
    let tcb = &mut core.tcb;
    if let Some(shift) = h.wscale() {
        if tcb.offer_wscale {
            tcb.wscale_on = true;
            tcb.snd_wscale = shift;
        }
    }
    if h.sack_permitted() && tcb.offer_sack {
        tcb.sack_on = true;
    }
    if let Some((tsval, _)) = h.timestamps() {
        if tcb.offer_ts {
            tcb.ts_on = true;
            tcb.ts_recent = tsval;
        }
    }
}

/// Adopts the peer's SYN into the TCB: "set RCV.NXT to SEG.SEQ+1, IRS
/// is set to SEG.SEQ", the MSS minimum, and the SYN-time option
/// negotiation. Control calls this from both LISTEN and SYN-SENT
/// processing; the state transition it precedes stays on the control
/// side.
pub(crate) fn note_peer_syn<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>, h: &TcpHeader) {
    debug_assert!(h.flags.syn);
    core.tcb.irs = h.seq;
    core.tcb.rcv_nxt = h.seq + 1;
    if let Some(mss) = h.mss() {
        core.tcb.mss = core.tcb.mss.min(u32::from(mss)).max(1);
    }
    negotiate_syn_options(core, h);
}

/// First sight of the peer's send window, from its SYN (passive side).
/// A SYN's window is never scaled (RFC 7323 §2.2); `SND.WL2` starts at
/// zero because the SYN acknowledged nothing.
pub(crate) fn init_window_from_syn<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>, h: &TcpHeader) {
    let tcb = &mut core.tcb;
    tcb.snd_wnd = u32::from(h.window);
    tcb.snd_wl1 = h.seq;
    tcb.snd_wl2 = Seq(0);
}

/// Stashes the timestamp echo a SYN+ACK carries so the imminent
/// `process_ack` can take the connection's first RTTM sample from it.
pub(crate) fn stash_syn_ack_echo<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>, h: &TcpHeader) {
    if core.tcb.ts_on {
        if let Some((_, ecr)) = h.timestamps() {
            if ecr != 0 {
                core.tcb.ts_ecr_pending = Some(ecr);
            }
        }
    }
}

/// The data-path half of becoming ESTABLISHED: adopt the peer's send
/// window from the establishing segment and open the congestion window.
/// `scaled` is false when the window arrives on a SYN+ACK (SYN windows
/// are never scaled) and true for the handshake-completing pure ACK.
///
/// Demands an [`EstablishedHandle`], which only the control path can
/// mint — the type system's way of saying the transition decision was
/// made on the other side of the boundary.
pub(crate) fn establish<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    h: &TcpHeader,
    scaled: bool,
    _proof: EstablishedHandle,
) {
    let wnd = if scaled { core.tcb.scale_peer_window(h.window, false) } else { u32::from(h.window) };
    let tcb = &mut core.tcb;
    tcb.snd_wnd = wnd;
    tcb.snd_wl1 = h.seq;
    tcb.snd_wl2 = h.ack;
    init_cwnd(cfg, core);
}

/// Sixth check: the URG bit (RFC 793 p. 73). We advance `RCV.UP` and
/// tell the user once per urgent region; like the paper's stack, we do
/// not expedite delivery.
pub(crate) fn check_urg<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>, seg: &TcpSegment) {
    if !seg.header.flags.urg || !core.state.can_receive() {
        return;
    }
    let up = seg.header.seq + u32::from(seg.header.urgent);
    if core.tcb.rcv_up.lt(up) {
        core.tcb.rcv_up = up;
        core.tcb.push_action(TcpAction::UrgentData(up));
    }
}

/// First check: sequence acceptability (the four-case table on p. 69).
/// Unacceptable segments are answered with an ACK (unless RST) and
/// dropped.
pub(crate) fn check_sequence<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    seg: &TcpSegment,
    now: VirtualTime,
) -> bool {
    let tcb = &core.tcb;
    let seq = seg.header.seq;
    let seg_len = seg.seq_len();
    let wnd = tcb.rcv_wnd();
    let acceptable = match (seg_len, wnd) {
        (0, 0) => seq == tcb.rcv_nxt,
        (0, w) => seq.in_window(tcb.rcv_nxt, w),
        (_, 0) => false,
        (l, w) => seq.in_window(tcb.rcv_nxt, w) || (seq + (l - 1)).in_window(tcb.rcv_nxt, w),
    };
    if !acceptable && !seg.header.flags.rst {
        send::queue_ack(core, now);
        if core.state == TcpState::TimeWait {
            // A retransmitted FIN restarts the 2MSL timer.
            core.tcb.push_action(TcpAction::SetTimer(TimerKind::TimeWait, cfg.time_wait_ms));
        }
    }
    acceptable
}

/// RFC 7323 PAWS: true if `tsval` is from before `ts_recent` in 32-bit
/// modular time — the segment predates one the connection already
/// processed, however the sequence numbers look.
fn paws_reject(ts_recent: u32, tsval: u32) -> bool {
    (tsval.wrapping_sub(ts_recent) as i32) < 0
}

/// Timestamp processing for a synchronized connection: PAWS first
/// (RFC 7323 §5.3 — reject and re-ACK old duplicates), then the
/// `TS.Recent` update for segments at the left window edge, then stash
/// TSecr for the RTTM sample `process_ack` takes. Returns false when
/// PAWS drops the segment.
pub(crate) fn process_timestamps<P: Clone + PartialEq + Debug>(
    core: &mut ConnCore<P>,
    h: &TcpHeader,
    now: VirtualTime,
) -> bool {
    if !core.tcb.ts_on {
        return true;
    }
    let Some((tsval, tsecr)) = h.timestamps() else {
        // The peer negotiated timestamps but omitted the option; be
        // lenient (RFC 7323 suggests dropping non-RST segments) so
        // mixed stacks still interoperate.
        return true;
    };
    if !h.flags.rst && paws_reject(core.tcb.ts_recent, tsval) {
        send::queue_ack(core, now);
        return false;
    }
    if h.seq.le(core.tcb.rcv_nxt) {
        core.tcb.ts_recent = tsval;
    }
    if h.flags.ack && tsecr != 0 {
        core.tcb.ts_ecr_pending = Some(tsecr);
    }
    true
}

/// RFC 793's send-window update rule.
pub(crate) fn update_send_window<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>, seg: &TcpSegment) {
    let h = &seg.header;
    let tcb = &mut core.tcb;
    if tcb.snd_wl1.lt(h.seq) || (tcb.snd_wl1 == h.seq && tcb.snd_wl2.le(h.ack)) {
        let was_zero = tcb.snd_wnd == 0;
        tcb.snd_wnd = tcb.scale_peer_window(h.window, h.flags.syn);
        tcb.snd_wl1 = h.seq;
        tcb.snd_wl2 = h.ack;
        if tcb.snd_wnd > 0 && was_zero {
            tcb.persist_backoff = 0;
            tcb.push_action(TcpAction::ClearTimer(TimerKind::Persist));
        }
    }
}

/// Seventh: process the segment text.
pub(crate) fn process_text<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    seg: &TcpSegment,
    now: VirtualTime,
) {
    if seg.payload.is_empty() {
        return;
    }
    if !core.state.can_receive() {
        // "This should not occur, since a FIN has been received from the
        // remote side. Ignore the segment text."
        return;
    }
    let tcb = &mut core.tcb;
    let seq = seg.header.seq;
    let fin = seg.header.flags.fin;

    if seq == tcb.rcv_nxt {
        // The expected segment: append, deliver, maybe drain the
        // out-of-order queue behind it. (The copy into the user's
        // delivery vector is the one copy the paper's receive path also
        // pays — the user boundary.)
        let (took, mut delivered) = {
            let bytes = seg.payload.bytes();
            let took = tcb.recv_buf.write(&bytes);
            (took, bytes[..took].to_vec())
        };
        tcb.rcv_nxt += took as u32;
        if took < seg.payload.len() {
            // Receive buffer full: the rest stays unacknowledged; the
            // sender will retransmit into our advertised window.
        } else {
            let (more, _fin_seen) = tcb.drain_out_of_order();
            delivered.extend_from_slice(&more);
            // A FIN buffered out of order is re-examined by check_fin on
            // the retransmission that delivers it in order; simpler and
            // still correct (the peer retransmits its FIN).
        }
        tcb.bytes_since_ack += delivered.len() as u32;
        tcb.segs_since_ack += 1;
        tcb.push_action(TcpAction::UserData(delivered));
        // ACK policy (BSD): immediately on every second data segment or
        // after 2·MSS of bytes; otherwise delayed ("else a Set_Timer for
        // the ack timer if the ack is to be delayed"). The threshold of
        // 2 can be raised by `ack_coalesce_segments` (GRO-era batching);
        // the default keeps the historical rule exactly.
        let th = cfg.ack_threshold();
        match cfg.delayed_ack_ms {
            Some(ms) if tcb.segs_since_ack < th && tcb.bytes_since_ack < th * tcb.mss && !fin => {
                tcb.ack_pending = true;
                tcb.push_action(TcpAction::SetTimer(TimerKind::DelayedAck, ms));
            }
            _ => {
                send::queue_ack(core, now);
                core.tcb.push_action(TcpAction::ClearTimer(TimerKind::DelayedAck));
            }
        }
    } else if seq.gt(tcb.rcv_nxt) {
        // Out of order: queue for later, duplicate-ACK immediately so
        // the sender learns what we are missing (with SACK negotiated,
        // the ACK's blocks describe exactly what arrived).
        let in_window = seq.in_window(tcb.rcv_nxt, tcb.rcv_wnd());
        if in_window {
            tcb.insert_out_of_order(seq, seg.payload.clone(), fin);
        }
        send::queue_ack(core, now);
    } else {
        // Overlapping retransmission: the head is old, the tail may be
        // new.
        let skip = tcb.rcv_nxt.since(seq) as usize;
        if skip < seg.payload.len() {
            let fresh_len = seg.payload.len() - skip;
            let (took, mut delivered) = {
                let bytes = seg.payload.bytes();
                let fresh = &bytes[skip..];
                let took = tcb.recv_buf.write(fresh);
                (took, fresh[..took].to_vec())
            };
            tcb.rcv_nxt += took as u32;
            if took == fresh_len {
                let (more, _) = tcb.drain_out_of_order();
                delivered.extend_from_slice(&more);
            }
            tcb.bytes_since_ack += delivered.len() as u32;
            tcb.push_action(TcpAction::UserData(delivered));
        }
        send::queue_ack(core, now);
    }
}

/// Marks a FIN that arrived ahead of missing data: a bare entry in the
/// reassembly queue so the gap's eventual fill re-exposes it.
pub(crate) fn note_out_of_order_fin<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>, seq: Seq) {
    core.tcb.insert_out_of_order(seq, PacketBuf::new(), true);
}

/// Consumes the peer's FIN at the left window edge: `RCV.NXT` steps
/// over it and the FIN is acknowledged immediately. Reports
/// [`DataEvent::FinReceived`]; which closing state that implies is
/// control's decision, not ours.
pub(crate) fn consume_fin<P: Clone + PartialEq + Debug>(
    core: &mut ConnCore<P>,
    now: VirtualTime,
) -> DataEvent {
    core.tcb.rcv_nxt += 1;
    send::queue_ack(core, now);
    DataEvent::FinReceived
}

/// Initial congestion window: one MSS (Jacobson's 1988 slow start, as
/// 1994 practice had it). The write happens behind the
/// [`crate::congestion::CongestionControl`] seam.
pub(crate) fn init_cwnd<P: Clone + PartialEq + Debug>(cfg: &TcpConfig, core: &mut ConnCore<P>) {
    if cfg.congestion_control {
        congestion::init(&mut core.tcb);
    }
}
