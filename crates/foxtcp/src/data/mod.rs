//! The data path: byte transfer over an already-shaped connection.
//!
//! Sequence/ack bookkeeping, the send and receive windows, congestion
//! control, retransmission, and the §4 fast path. Modules here own the
//! TCB's sequence-space and window fields (the `tcb_write`/`cc_write`
//! foxlint whitelists point exactly here) and are forbidden from
//! writing [`crate::TcpState`] — lifecycle decisions stay in
//! [`crate::control`], which hands the data path an
//! `EstablishedHandle` proof token at transition time and learns of
//! stream-closing events through `transfer::DataEvent`.

pub mod congestion;
pub mod fastpath;
pub mod resend;
pub mod send;
pub mod transfer;
