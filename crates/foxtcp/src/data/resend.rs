//! The Resend module: the retransmission queue and the round-trip time
//! computations "developed by Karn and Jacobson" (paper §4), plus the
//! Jacobson congestion windows RFC 1122 requires.
//!
//! Responsibilities, exactly as the paper assigns them: implement the
//! RTT estimation, and "remove acknowledged segments from the retransmit
//! queue".

use crate::action::{LossEvent, TcpAction, TimerKind};
use crate::congestion;
use crate::tcb::{RttEstimator, SentSegment, MAX_RTO, MIN_RTO};
use crate::{ConnCore, TcpConfig};
use foxbasis::seq::Seq;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxwire::tcp::{TcpFlags, TcpHeader, TcpSegment};
use std::fmt::Debug;

/// Jacobson's estimator update: `rttvar = 3/4 rttvar + 1/4 |srtt - m|`,
/// `srtt = 7/8 srtt + 1/8 m`, `rto = srtt + 4 rttvar`, clamped.
pub fn update_rtt(est: &mut RttEstimator, sample: VirtualDuration) {
    match est.srtt {
        None => {
            est.srtt = Some(sample);
            est.rttvar = sample / 2;
        }
        Some(srtt) => {
            let err = if srtt > sample { srtt - sample } else { sample - srtt };
            est.rttvar = (est.rttvar * 3) / 4 + err / 4;
            est.srtt = Some((srtt * 7) / 8 + sample / 8);
        }
    }
    let srtt = est.srtt.expect("just set");
    est.rto = (srtt + est.rttvar * 4).max(MIN_RTO).min(MAX_RTO);
}

/// Outcome of processing an acceptable ACK.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct AckOutcome {
    /// Payload bytes newly acknowledged.
    pub bytes_acked: u32,
    /// Our SYN was acknowledged.
    pub syn_acked: bool,
    /// Our FIN was acknowledged.
    pub fin_acked: bool,
}

/// Processes an ACK that satisfies `SND.UNA < SEG.ACK =< SND.NXT`:
/// removes acknowledged segments from the retransmit queue, advances
/// `snd_una`, releases send-buffer bytes, takes the RTT sample (Karn),
/// opens the congestion window, and re-arms or clears the retransmit
/// timer.
pub fn process_ack<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    ack: Seq,
    now: VirtualTime,
) -> AckOutcome {
    let tcb = &mut core.tcb;
    let mut out = AckOutcome::default();

    // Remove acknowledged segments from the retransmit queue.
    while let Some(front) = tcb.resend_queue.front() {
        if front.end().le(ack) {
            let seg = tcb.resend_queue.pop_front().expect("front");
            out.bytes_acked += seg.len();
            out.syn_acked |= seg.syn;
            out.fin_acked |= seg.fin;
        } else {
            break;
        }
    }
    // Partial ACK inside the front segment: trim it.
    if let Some(front) = tcb.resend_queue.front_mut() {
        if front.seq.lt(ack) && ack.lt(front.end()) {
            let cut = ack.since(front.seq);
            let data_cut = cut - u32::from(front.syn && front.seq.lt(ack));
            // Narrow the stored view — the storage (shared with the
            // in-flight frame) is untouched.
            front.payload.trim_front(data_cut.min(front.len()) as usize);
            if front.syn {
                front.syn = false; // the SYN octet is first, so it is covered
                out.syn_acked = true;
            }
            front.seq = ack;
            out.bytes_acked += data_cut;
        }
    }

    // RTT sampling. With timestamps negotiated, every acceptable ACK
    // carries a usable TSecr (RFC 7323 RTTM) — retransmission ambiguity
    // doesn't arise because the echoed value identifies the send.
    // Without them, Karn: only sample if the timed sequence number is
    // covered and no retransmission intervened (timing is cleared on
    // retransmit).
    if tcb.ts_on {
        if let Some(ecr) = tcb.ts_ecr_pending.take() {
            let sample_ms = u64::from((now.as_millis() as u32).wrapping_sub(ecr));
            if sample_ms < 3_600_000 {
                update_rtt(&mut tcb.rtt, VirtualDuration::from_millis(sample_ms));
            }
            tcb.rtt.timing = None;
        }
    } else if let Some((timed_seq, sent_at)) = tcb.rtt.timing {
        if timed_seq.le(ack) {
            update_rtt(&mut tcb.rtt, now.saturating_since(sent_at));
            tcb.rtt.timing = None;
        }
    }

    // The ACK of new data resets backoff and the give-up counter.
    tcb.rtt.backoff = 0;
    tcb.retransmits_left = cfg.max_retransmits;
    tcb.dup_acks = 0;

    // Release acknowledged bytes from the send buffer. (snd_una tracks
    // the buffer head; SYN/FIN octets occupy sequence space but no
    // buffer bytes.)
    tcb.send_buf.skip(out.bytes_acked as usize);
    tcb.snd_una = ack;
    if tcb.sack_on {
        tcb.prune_sack_scoreboard(ack);
    }

    // Fast-recovery ACK processing (NewReno, RFC 6582). An ACK covering
    // the recovery point ends recovery and deflates cwnd to ssthresh; an
    // ACK below it acknowledges only part of the lost window, so the
    // next hole is retransmitted immediately and recovery continues with
    // cwnd deflated by the amount acknowledged (plus one MSS back, so
    // the pipe stays as full as it was).
    let was_in_recovery = tcb.recover.is_some();
    let mut partial_ack = false;
    if cfg.congestion_control {
        if let Some(rp) = tcb.recover {
            if ack.ge(rp) {
                congestion::exit_recovery(tcb, now);
                tcb.recover = None;
                tcb.sack_rexmit = None;
                tcb.push_action(TcpAction::Loss(LossEvent::RecoveryExited));
            } else {
                congestion::partial_ack(tcb, out.bytes_acked);
                tcb.rtt.timing = None; // Karn: the hole is retransmitted below
                partial_ack = true;
                tcb.push_action(TcpAction::Loss(LossEvent::PartialAck));
            }
        }
    }

    // Congestion window growth: the algorithm behind the seam decides
    // (Reno: slow start below ssthresh, linear above). Suspended while
    // recovering — inflation/deflation own the window until the
    // recovery point is acknowledged.
    if cfg.congestion_control && !was_in_recovery {
        congestion::on_ack(tcb, out.bytes_acked, now);
    }

    // Retransmit timer: clear when everything is acknowledged, restart
    // when something is still outstanding.
    if tcb.resend_queue.is_empty() {
        tcb.push_action(TcpAction::ClearTimer(TimerKind::Resend));
    } else {
        tcb.push_action(TcpAction::SetTimer(TimerKind::Resend, tcb.rtt.timeout().as_millis()));
    }
    tcb.push_action(TcpAction::AckedTo(ack));
    if partial_ack {
        let from = core.tcb.sack_rexmit.unwrap_or(core.tcb.snd_una);
        if !core.tcb.sack_on || core.tcb.sack_scoreboard.is_empty() {
            retransmit_front(core, now);
        } else if !sack_retransmit_next(core, now) {
            // RFC 6675: the scoreboard, not the cumulative ACK, decides
            // what goes out next — the hole at `snd_una` usually went
            // out off an earlier duplicate ACK, and re-sending it on
            // every partial ACK is the one-hole-per-RTT NewReno tax
            // SACK exists to avoid. Only when the new front hole lies
            // beyond everything the scoreboard drove out does the
            // NewReno retransmit still apply.
            if core.tcb.resend_queue.front().is_some_and(|f| f.seq.ge(from)) {
                retransmit_front(core, now);
            }
        }
    }
    out
}

/// A duplicate ACK (`SEG.ACK == SND.UNA` with nothing else of interest).
/// Three trigger fast retransmit and enter fast recovery (Reno); while
/// recovering, every further duplicate ACK inflates the congestion
/// window by one MSS — each one means a segment left the network — and
/// new data is transmitted when the inflated window allows. Recovery
/// ends (and the window deflates) in [`process_ack`] when the recovery
/// point is acknowledged.
pub fn duplicate_ack<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    now: VirtualTime,
) {
    if core.tcb.resend_queue.is_empty() {
        return;
    }
    core.tcb.dup_acks += 1;
    if !cfg.congestion_control {
        return;
    }
    if core.tcb.recover.is_some() {
        // In recovery: inflate and try to keep the pipe full. With a
        // SACK scoreboard the duplicate also pinpoints the *next* hole,
        // which goes out right away — NewReno must instead wait a full
        // RTT (one partial ACK) per hole, which is exactly the
        // multi-hole burst-loss gap SACK closes.
        congestion::dup_ack_inflate(&mut core.tcb);
        if core.tcb.sack_on {
            sack_retransmit_next(core, now);
        }
        crate::send::maybe_send(cfg, core, now);
    } else if core.tcb.dup_acks >= 3 {
        // Enter fast recovery: retransmit the first unacknowledged
        // segment without waiting for the timer, halve the window, and
        // remember where recovery ends. (`>=` rather than `==`: if the
        // third duplicate arrives while something else defers entry —
        // e.g. recovery just exited on a partial window — the next
        // duplicate still re-arms it.)
        let tcb = &mut core.tcb;
        congestion::enter_recovery(tcb, now);
        tcb.recover = Some(tcb.snd_nxt);
        tcb.sack_rexmit = None;
        tcb.rtt.timing = None; // Karn
        tcb.push_action(TcpAction::Loss(LossEvent::RecoveryEntered));
        tcb.push_action(TcpAction::Loss(LossEvent::FastRetransmit));
        retransmit_front(core, now);
        if core.tcb.sack_on {
            // The front hole just went out; remember so further
            // duplicates advance to the following holes.
            core.tcb.sack_rexmit = core.tcb.resend_queue.front().map(SentSegment::end);
        }
    }
}

/// SACK-based loss recovery (RFC 6675, simplified): retransmits the
/// next segment the scoreboard shows as a hole — unacknowledged, not
/// SACKed, and below the highest SACKed edge (segments above it are not
/// yet presumed lost). At most one segment per duplicate ACK, so the
/// retransmissions are ACK-clocked like the rest of recovery. Returns
/// whether a hole was found and retransmitted.
pub fn sack_retransmit_next<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>, now: VirtualTime) -> bool {
    let high = match core.tcb.sack_scoreboard.last() {
        Some((_, e)) => *e,
        None => return false, // no scoreboard: plain NewReno behavior
    };
    let from = core.tcb.sack_rexmit.unwrap_or(core.tcb.snd_una);
    let hole = core
        .tcb
        .resend_queue
        .iter()
        .find(|s| s.seq.ge(from) && s.end().le(high) && !core.tcb.sacked(s.seq, s.end()))
        .cloned();
    if let Some(seg) = hole {
        core.tcb.sack_rexmit = Some(seg.end());
        retransmit_segment(core, &seg, now);
        core.tcb.push_action(TcpAction::Loss(LossEvent::FastRetransmit));
        true
    } else {
        false
    }
}

/// Rebuilds and queues the first unacknowledged segment for
/// transmission. The payload is *not* re-read from the send buffer: the
/// queued [`foxbasis::buf::PacketBuf`] is re-referenced, so a pure
/// retransmission memcpys nothing.
pub fn retransmit_front<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>, now: VirtualTime) {
    let front = match core.tcb.resend_queue.front() {
        Some(s) => s.clone(),
        None => return,
    };
    retransmit_segment(core, &front, now);
}

/// Rebuilds the header for `seg` (current `rcv_nxt`, window, negotiated
/// options) and queues it for transmission.
fn retransmit_segment<P: Clone + PartialEq + Debug>(
    core: &mut ConnCore<P>,
    seg: &SentSegment,
    now: VirtualTime,
) {
    let payload = seg.payload.clone();
    let mut header = TcpHeader::new(core.local_port, core.remote.as_ref().map(|(_, p)| *p).unwrap_or(0));
    header.seq = seg.seq;
    header.ack = core.tcb.rcv_nxt;
    header.flags = TcpFlags {
        syn: seg.syn,
        fin: seg.fin,
        ack: core.state.is_synchronized() || !seg.syn,
        psh: !seg.is_empty(),
        ..TcpFlags::default()
    };
    if seg.syn {
        header.flags.ack = core.state.is_syn_received();
        crate::send::push_syn_options(core, &mut header, now);
    } else if core.tcb.ts_on {
        header
            .options
            .push(foxwire::tcp::TcpOption::Timestamps(crate::send::ts_val(now), core.tcb.ts_recent));
    }
    header.window = core.tcb.wire_window_field(seg.syn);
    let tcb = &mut core.tcb;
    tcb.push_action(TcpAction::SendSegment(TcpSegment { header, payload }));
}

/// True while the retransmission queue still holds unacknowledged
/// flight — a retransmission timer that fires with nothing queued is
/// stale and should do nothing.
pub fn has_flight<P: Clone + PartialEq + Debug>(core: &ConnCore<P>) -> bool {
    !core.tcb.resend_queue.is_empty()
}

/// True once the per-connection retry budget is spent. The control path
/// turns this into a give-up (the paper's user timeout); the data path
/// only reports it.
pub fn out_of_retries<P: Clone + PartialEq + Debug>(core: &ConnCore<P>) -> bool {
    core.tcb.retransmits_left == 0
}

/// The data-path half of a retransmission timeout: spend a retry, back
/// the RTO off exponentially, apply Karn's rule, and let the congestion
/// controller respond. Whether the connection *gives up* — the retry
/// budget, the SYN-state retry accounting — is decided on the control
/// side (`state::timer_expired`), around this call.
pub fn rto_backoff<P: Clone + PartialEq + Debug>(cfg: &TcpConfig, core: &mut ConnCore<P>, now: VirtualTime) {
    let tcb = &mut core.tcb;
    tcb.retransmits_left -= 1;
    tcb.rtt.backoff += 1;
    tcb.rtt.timing = None; // Karn: never time a retransmitted segment
    tcb.push_action(TcpAction::Loss(LossEvent::Rto));
    if cfg.congestion_control {
        congestion::on_rto(tcb, now);
        tcb.dup_acks = 0;
        // An RTO abandons any fast recovery in progress — slow start
        // owns the window again. RFC 6675 also discards the SACK
        // scoreboard: the network state it described is stale.
        tcb.recover = None;
        tcb.sack_scoreboard.clear();
        tcb.sack_rexmit = None;
    }
}

/// Resends the front (oldest unacknowledged) segment and re-arms the
/// retransmission timer with the backed-off RTO.
pub fn retransmit_and_rearm<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>, now: VirtualTime) {
    retransmit_front(core, now);
    let timeout = core.tcb.rtt.timeout().as_millis();
    core.tcb.push_action(TcpAction::SetTimer(TimerKind::Resend, timeout));
}

/// Records a freshly transmitted segment in the retransmission queue and
/// starts the RTT clock if idle.
pub fn record_sent<P>(tcb: &mut crate::tcb::Tcb<P>, seg: SentSegment, now: VirtualTime) {
    if tcb.rtt.timing.is_none() && seg.seq_len() > 0 {
        tcb.rtt.timing = Some((seg.end(), now));
    }
    let was_empty = tcb.resend_queue.is_empty();
    tcb.resend_queue.push_back(seg);
    if was_empty {
        tcb.push_action(TcpAction::SetTimer(TimerKind::Resend, tcb.rtt.timeout().as_millis()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcb::{TcpState, INITIAL_RTO};

    fn cfg() -> TcpConfig {
        TcpConfig::default()
    }

    fn core_with_flight() -> ConnCore<u32> {
        let mut core: ConnCore<u32> = ConnCore::new(&cfg(), 1000, Seq(100), 1460);
        core.remote = Some((9, 2000));
        core.state = TcpState::Estab;
        core.tcb.mss = 1000;
        core.tcb.snd_wnd = 8000;
        // 3000 bytes in the buffer, all sent as three 1000-byte segments.
        core.tcb.send_buf.write(&[0xAA; 3000]);
        for i in 0..3u32 {
            core.tcb.resend_queue.push_back(SentSegment {
                seq: Seq(100 + i * 1000),
                payload: vec![0xAA; 1000].into(),
                syn: false,
                fin: false,
            });
        }
        core.tcb.snd_nxt = Seq(3100);
        core
    }

    fn drain(core: &ConnCore<u32>) -> Vec<String> {
        core.tcb.to_do.borrow_mut().drain_all().into_iter().map(|a| format!("{a:?}")).collect()
    }

    /// Drives a retransmission timeout the way the engine does: through
    /// the control path (`state::timer_expired`), which wraps the data
    /// helpers under test here.
    fn rto(core: &mut ConnCore<u32>, at_ms: u64) {
        crate::state::timer_expired(&cfg(), core, TimerKind::Resend, VirtualTime::from_millis(at_ms));
    }

    #[test]
    fn jacobson_first_sample_initializes() {
        let mut est = RttEstimator::default();
        update_rtt(&mut est, VirtualDuration::from_millis(100));
        assert_eq!(est.srtt, Some(VirtualDuration::from_millis(100)));
        assert_eq!(est.rttvar, VirtualDuration::from_millis(50));
        // srtt + 4·rttvar = 300 ms, floored at the BSD 1 s minimum.
        assert_eq!(est.rto, MIN_RTO);
        // A slow path's first sample escapes the floor.
        let mut est = RttEstimator::default();
        update_rtt(&mut est, VirtualDuration::from_millis(600));
        assert_eq!(est.rto, VirtualDuration::from_millis(600 + 4 * 300));
    }

    #[test]
    fn jacobson_converges_on_steady_rtt() {
        let mut est = RttEstimator::default();
        for _ in 0..50 {
            update_rtt(&mut est, VirtualDuration::from_millis(80));
        }
        let srtt = est.srtt.unwrap().as_millis();
        assert!((78..=82).contains(&srtt), "srtt={srtt}");
        // Variance decays toward zero, so RTO falls to the floor.
        assert_eq!(est.rto, MIN_RTO);
    }

    #[test]
    fn jacobson_spike_inflates_rto() {
        let mut est = RttEstimator::default();
        for _ in 0..10 {
            update_rtt(&mut est, VirtualDuration::from_millis(500));
        }
        let calm = est.rto;
        update_rtt(&mut est, VirtualDuration::from_millis(5000));
        assert!(est.rto > calm, "a spike must raise the RTO: {:?} vs {calm:?}", est.rto);
    }

    #[test]
    fn ack_removes_covered_segments() {
        let mut core = core_with_flight();
        let out = process_ack(&cfg(), &mut core, Seq(2100), VirtualTime::from_millis(50));
        assert_eq!(out.bytes_acked, 2000);
        assert_eq!(core.tcb.snd_una, Seq(2100));
        assert_eq!(core.tcb.resend_queue.len(), 1);
        assert_eq!(core.tcb.send_buf.len(), 1000, "acked bytes released");
        let acts = drain(&core);
        assert!(acts.iter().any(|a| a.starts_with("Set_Timer(Resend")), "timer restarts: {acts:?}");
    }

    #[test]
    fn full_ack_clears_resend_timer() {
        let mut core = core_with_flight();
        process_ack(&cfg(), &mut core, Seq(3100), VirtualTime::from_millis(50));
        assert!(core.tcb.resend_queue.is_empty());
        let acts = drain(&core);
        assert!(acts.iter().any(|a| a.starts_with("Clear_Timer(Resend")), "{acts:?}");
    }

    #[test]
    fn partial_ack_trims_front_segment() {
        let mut core = core_with_flight();
        let out = process_ack(&cfg(), &mut core, Seq(600), VirtualTime::from_millis(10));
        assert_eq!(out.bytes_acked, 500);
        let front = core.tcb.resend_queue.front().unwrap();
        assert_eq!(front.seq, Seq(600));
        assert_eq!(front.len(), 500);
    }

    #[test]
    fn rtt_sample_taken_only_when_timed_seq_covered() {
        let mut core = core_with_flight();
        core.tcb.rtt.timing = Some((Seq(2100), VirtualTime::from_millis(0)));
        process_ack(&cfg(), &mut core, Seq(1100), VirtualTime::from_millis(90));
        assert!(core.tcb.rtt.timing.is_some(), "not covered yet");
        assert!(core.tcb.rtt.srtt.is_none());
        process_ack(&cfg(), &mut core, Seq(2100), VirtualTime::from_millis(120));
        assert_eq!(core.tcb.rtt.srtt, Some(VirtualDuration::from_millis(120)));
        assert!(core.tcb.rtt.timing.is_none());
    }

    #[test]
    fn karn_no_sample_after_retransmit() {
        let mut core = core_with_flight();
        core.tcb.rtt.timing = Some((Seq(1100), VirtualTime::from_millis(0)));
        rto(&mut core, 1000);
        assert!(core.tcb.rtt.timing.is_none(), "Karn clears the timer");
        process_ack(&cfg(), &mut core, Seq(1100), VirtualTime::from_millis(1500));
        assert!(core.tcb.rtt.srtt.is_none(), "no sample from a retransmitted segment");
    }

    #[test]
    fn backoff_doubles_and_ack_resets() {
        let mut core = core_with_flight();
        let t0 = core.tcb.rtt.timeout();
        assert_eq!(t0, INITIAL_RTO);
        rto(&mut core, 1000);
        assert_eq!(core.tcb.rtt.backoff, 1);
        assert_eq!(core.tcb.rtt.timeout(), INITIAL_RTO * 2);
        rto(&mut core, 3000);
        assert_eq!(core.tcb.rtt.timeout(), INITIAL_RTO * 4);
        process_ack(&cfg(), &mut core, Seq(1100), VirtualTime::from_millis(3500));
        assert_eq!(core.tcb.rtt.backoff, 0, "new data acked resets backoff");
    }

    #[test]
    fn retransmit_reuses_queued_payload() {
        let mut core = core_with_flight();
        rto(&mut core, 1000);
        let acts = core.tcb.to_do.borrow_mut().drain_all();
        let seg = acts
            .iter()
            .find_map(|a| match a {
                TcpAction::SendSegment(s) => Some(s.clone()),
                _ => None,
            })
            .expect("a retransmitted segment");
        assert_eq!(seg.header.seq, Seq(100));
        assert_eq!(seg.payload, vec![0xAA; 1000]);
    }

    #[test]
    fn timeout_shrinks_congestion_window() {
        let mut core = core_with_flight();
        core.tcb.cwnd = 8000;
        core.tcb.ssthresh = u32::MAX;
        rto(&mut core, 1000);
        assert_eq!(core.tcb.cwnd, 1000, "back to one MSS");
        assert_eq!(core.tcb.ssthresh, 2000, "half the flight, floored at 2·MSS");
    }

    #[test]
    fn giving_up_signals_user_timeout() {
        let mut core = core_with_flight();
        core.tcb.retransmits_left = 0;
        rto(&mut core, 1000);
        assert_eq!(core.state, TcpState::Closed);
        let acts = drain(&core);
        assert!(acts.iter().any(|a| a == "User_Timeout"), "{acts:?}");
    }

    #[test]
    fn three_duplicate_acks_fast_retransmit() {
        let mut core = core_with_flight();
        core.tcb.cwnd = 6000;
        core.tcb.ssthresh = u32::MAX;
        let now = VirtualTime::from_millis(10);
        duplicate_ack(&cfg(), &mut core, now);
        duplicate_ack(&cfg(), &mut core, now);
        assert!(drain(&core).iter().all(|a| !a.starts_with("Send_Segment")));
        duplicate_ack(&cfg(), &mut core, now);
        let acts = drain(&core);
        assert!(
            acts.iter().any(|a| a.starts_with("Send_Segment(seq=100")),
            "fast retransmit of the first segment: {acts:?}"
        );
        assert_eq!(core.tcb.ssthresh, 2000);
    }

    #[test]
    fn fast_recovery_entry_inflates_cwnd_by_three() {
        let mut core = core_with_flight();
        core.tcb.cwnd = 6000;
        core.tcb.ssthresh = u32::MAX;
        let now = VirtualTime::from_millis(10);
        for _ in 0..3 {
            duplicate_ack(&cfg(), &mut core, now);
        }
        // flight 3000 → ssthresh 2000; cwnd = ssthresh + 3·MSS.
        assert_eq!(core.tcb.ssthresh, 2000);
        assert_eq!(core.tcb.cwnd, 5000);
        assert_eq!(core.tcb.recover, Some(Seq(3100)), "recovery point is snd_nxt");
        let acts = drain(&core);
        assert!(acts.iter().any(|a| a == "Loss(RecoveryEntered)"), "{acts:?}");
        assert!(acts.iter().any(|a| a == "Loss(FastRetransmit)"), "{acts:?}");
    }

    #[test]
    fn further_duplicates_inflate_and_send_new_data() {
        let mut core = core_with_flight();
        core.tcb.cwnd = 6000;
        core.tcb.ssthresh = u32::MAX;
        // 2000 more bytes staged but unsent.
        core.tcb.send_buf.write(&[0xBB; 2000]);
        let now = VirtualTime::from_millis(10);
        for _ in 0..3 {
            duplicate_ack(&cfg(), &mut core, now);
        }
        core.tcb.to_do.borrow_mut().clear();
        // Fourth duplicate: inflate one MSS (5000 → 6000). The usable
        // window (min(snd_wnd, cwnd) − flight = 3000) now admits the
        // staged data.
        duplicate_ack(&cfg(), &mut core, now);
        assert_eq!(core.tcb.cwnd, 6000);
        let acts = drain(&core);
        assert!(
            acts.iter().any(|a| a.starts_with("Send_Segment(seq=3100")),
            "new data transmitted under the inflated window: {acts:?}"
        );
        assert_eq!(core.tcb.snd_nxt, Seq(5100), "both staged segments went out");
    }

    #[test]
    fn full_recovery_ack_deflates_to_ssthresh() {
        let mut core = core_with_flight();
        core.tcb.cwnd = 6000;
        core.tcb.ssthresh = u32::MAX;
        let now = VirtualTime::from_millis(10);
        for _ in 0..4 {
            duplicate_ack(&cfg(), &mut core, now);
        }
        core.tcb.to_do.borrow_mut().clear();
        // ACK covering the recovery point (3100) ends recovery.
        process_ack(&cfg(), &mut core, Seq(3100), VirtualTime::from_millis(50));
        assert_eq!(core.tcb.recover, None);
        assert_eq!(core.tcb.cwnd, 2000, "deflated to ssthresh, not left inflated");
        let acts = drain(&core);
        assert!(acts.iter().any(|a| a == "Loss(RecoveryExited)"), "{acts:?}");
    }

    #[test]
    fn partial_ack_retransmits_next_hole_and_stays_in_recovery() {
        let mut core = core_with_flight();
        core.tcb.cwnd = 6000;
        core.tcb.ssthresh = u32::MAX;
        let now = VirtualTime::from_millis(10);
        for _ in 0..3 {
            duplicate_ack(&cfg(), &mut core, now);
        }
        core.tcb.to_do.borrow_mut().clear();
        // ACK of only the first segment: below the recovery point.
        process_ack(&cfg(), &mut core, Seq(1100), VirtualTime::from_millis(50));
        assert_eq!(core.tcb.recover, Some(Seq(3100)), "partial ACK keeps recovery open");
        // Deflate by the 1000 acked, add one MSS back: 5000 net.
        assert_eq!(core.tcb.cwnd, 5000);
        let acts = drain(&core);
        assert!(acts.iter().any(|a| a == "Loss(PartialAck)"), "{acts:?}");
        assert!(
            acts.iter().any(|a| a.starts_with("Send_Segment(seq=1100")),
            "the next hole is retransmitted immediately: {acts:?}"
        );
    }

    #[test]
    fn recovery_rearms_after_exit() {
        let mut core = core_with_flight();
        core.tcb.cwnd = 6000;
        core.tcb.ssthresh = u32::MAX;
        let now = VirtualTime::from_millis(10);
        for _ in 0..5 {
            duplicate_ack(&cfg(), &mut core, now); // well past three
        }
        process_ack(&cfg(), &mut core, Seq(3100), VirtualTime::from_millis(50));
        assert_eq!(core.tcb.recover, None);
        assert_eq!(core.tcb.dup_acks, 0, "exit resets the duplicate count");
        // A second loss episode: new flight, three fresh duplicates must
        // re-enter recovery (the old `== 3` trigger would never re-fire
        // if the count passed three while the first episode was open).
        core.tcb.send_buf.write(&[0xCC; 2000]);
        for i in 0..2u32 {
            core.tcb.resend_queue.push_back(SentSegment {
                seq: Seq(3100 + i * 1000),
                payload: vec![0xCC; 1000].into(),
                syn: false,
                fin: false,
            });
        }
        core.tcb.snd_nxt = Seq(5100);
        core.tcb.to_do.borrow_mut().clear();
        for _ in 0..3 {
            duplicate_ack(&cfg(), &mut core, now);
        }
        assert_eq!(core.tcb.recover, Some(Seq(5100)), "second episode entered");
        let acts = drain(&core);
        assert!(acts.iter().any(|a| a == "Loss(RecoveryEntered)"), "{acts:?}");
    }

    #[test]
    fn rto_abandons_recovery() {
        let mut core = core_with_flight();
        core.tcb.cwnd = 6000;
        core.tcb.ssthresh = u32::MAX;
        let now = VirtualTime::from_millis(10);
        for _ in 0..3 {
            duplicate_ack(&cfg(), &mut core, now);
        }
        assert!(core.tcb.recover.is_some());
        rto(&mut core, 2000);
        assert_eq!(core.tcb.recover, None, "slow start owns the window after an RTO");
        assert_eq!(core.tcb.cwnd, 1000);
        let acts = drain(&core);
        assert!(acts.iter().any(|a| a == "Loss(Rto)"), "{acts:?}");
    }

    #[test]
    fn record_sent_arms_timer_once() {
        let mut core = core_with_flight();
        core.tcb.resend_queue.clear();
        let now = VirtualTime::from_millis(5);
        record_sent(
            &mut core.tcb,
            SentSegment { seq: Seq(100), payload: vec![0; 10].into(), syn: false, fin: false },
            now,
        );
        record_sent(
            &mut core.tcb,
            SentSegment { seq: Seq(110), payload: vec![0; 10].into(), syn: false, fin: false },
            now,
        );
        let acts = drain(&core);
        assert_eq!(acts.iter().filter(|a| a.starts_with("Set_Timer(Resend")).count(), 1);
        assert_eq!(core.tcb.rtt.timing, Some((Seq(110), now)), "first segment timed");
    }
}
