//! The `tcp_action` datatype (paper Fig. 8) — the currency of the
//! quasi-synchronous control structure.
//!
//! "Executing an operation computes the corresponding actions and queues
//! them onto the connection's to_do queue. ... Actions are designed not
//! to wait; instead, they can start timers or queue other actions for
//! later execution."
//!
//! Everything that happens to a connection — a decoded segment, a timer
//! expiration, data for the user, a segment to transmit — is one of
//! these values. Because the queue imposes a total order, "once the
//! actions have been placed on the queue the behavior of TCP is
//! completely deterministic and testable."

use foxbasis::seq::Seq;
use foxwire::tcp::TcpSegment;
use std::fmt;

/// The per-connection timers (the Action module's time-dependent side).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum TimerKind {
    /// Retransmission timer (the Resend module's).
    Resend,
    /// Delayed-ACK timer ("a Set_Timer for the ack timer if the ack is
    /// to be delayed").
    DelayedAck,
    /// Zero-window probe (persist) timer.
    Persist,
    /// The 2MSL TIME-WAIT timer.
    TimeWait,
    /// The user timeout of the paper's Fig. 4 functor header: "the
    /// length of time before hung operations fail".
    UserTimeout,
}

impl TimerKind {
    /// All kinds, for iteration.
    pub const ALL: [TimerKind; 5] = [
        TimerKind::Resend,
        TimerKind::DelayedAck,
        TimerKind::Persist,
        TimerKind::TimeWait,
        TimerKind::UserTimeout,
    ];

    /// The timer's name, as event exports use it.
    pub fn name(self) -> &'static str {
        match self {
            TimerKind::Resend => "Resend",
            TimerKind::DelayedAck => "DelayedAck",
            TimerKind::Persist => "Persist",
            TimerKind::TimeWait => "TimeWait",
            TimerKind::UserTimeout => "UserTimeout",
        }
    }
}

/// A loss-recovery event, threaded through the to_do queue so the
/// engine's statistics (and tests reading the queue or trace) can
/// observe *how* a transfer recovered, not just that the bytes arrived.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LossEvent {
    /// Three duplicate ACKs retransmitted the front segment without
    /// waiting for the timer.
    FastRetransmit,
    /// Fast recovery was entered (Reno: cwnd inflating on further
    /// duplicate ACKs until the recovery point is acknowledged).
    RecoveryEntered,
    /// The recovery point was acknowledged; cwnd deflated to ssthresh.
    RecoveryExited,
    /// A partial ACK during recovery (NewReno): the next hole was
    /// retransmitted immediately, recovery continues.
    PartialAck,
    /// The retransmission timer fired with data outstanding.
    Rto,
    /// The persist timer sent a zero-window probe.
    Probe,
}

impl LossEvent {
    /// The event's name, as event exports use it.
    pub fn name(self) -> &'static str {
        match self {
            LossEvent::FastRetransmit => "FastRetransmit",
            LossEvent::RecoveryEntered => "RecoveryEntered",
            LossEvent::RecoveryExited => "RecoveryExited",
            LossEvent::PartialAck => "PartialAck",
            LossEvent::Rto => "Rto",
            LossEvent::Probe => "Probe",
        }
    }
}

/// A repelled state-targeted attack, threaded through the to_do queue
/// like [`LossEvent`] so the engine's statistics and trace observe
/// *which* hostile input the connection rejected, not merely that it
/// survived.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AttackEvent {
    /// An RST whose sequence number was in the receive window but not
    /// exactly `RCV.NXT` — a blind reset attempt; a challenge ACK was
    /// queued instead of aborting (RFC 5961 §3.2 semantics).
    RstBadSeq,
    /// An ACK for data never sent (`SEG.ACK > SND.NXT`) — an optimistic
    /// ACK attempt; the segment was dropped after queuing an ACK.
    AckUnsentData,
}

impl AttackEvent {
    /// The event's name, as event exports use it.
    pub fn name(self) -> &'static str {
        match self {
            AttackEvent::RstBadSeq => "RstBadSeq",
            AttackEvent::AckUnsentData => "AckUnsentData",
        }
    }
}

/// One action on a connection's to_do queue (paper Fig. 8).
/// `P` is the lower-layer peer address type (IPv4 address for
/// `Standard_Tcp`, Ethernet address for `Special_Tcp`).
pub enum TcpAction<P> {
    /// An internalized (decoded, checksum-verified) segment has arrived
    /// from `src` — the Receive module processes it.
    ProcessData(TcpSegment, P),
    /// Externalize and transmit this segment (the Action module sends
    /// it; the Send and Receive modules only ever *queue* it).
    SendSegment(TcpSegment),
    /// Deliver in-order payload to the user's handler.
    UserData(Vec<u8>),
    /// A timer fired.
    TimerExpiration(TimerKind),
    /// Arm a timer for the given number of milliseconds.
    SetTimer(TimerKind, u64),
    /// Disarm a timer.
    ClearTimer(TimerKind),
    /// The three-way handshake finished: complete the user's `open`.
    CompleteOpen,
    /// The connection is fully closed: complete the user's `close`.
    CompleteClose,
    /// The peer's FIN was consumed: tell the user no more data is
    /// coming.
    PeerClose,
    /// The peer reset the connection.
    PeerReset,
    /// The user timeout elapsed with operations still hung.
    UserTimeoutFired,
    /// A new embryonic connection was spawned off a listener (delivered
    /// to the *listener's* queue so its user can adopt the child).
    NewConnection(u32),
    /// The peer signalled urgent data up to the given sequence number
    /// (RFC 793's sixth check; tracked, not expedited).
    UrgentData(Seq),
    /// Karn/Jacobson bookkeeping: a valid ACK advanced `snd_una` to the
    /// given sequence number (used by module-level tests to observe the
    /// Resend module; the engine treats it as a no-op).
    AckedTo(Seq),
    /// Loss-recovery bookkeeping: the Resend/Send modules report how
    /// they are recovering; the engine counts these into its statistics
    /// and trace.
    Loss(LossEvent),
    /// Attack-hardening bookkeeping: the Receive module repelled a
    /// state-targeted attack; the engine counts these into its
    /// statistics and trace.
    Attack(AttackEvent),
}

impl<P: fmt::Debug> fmt::Debug for TcpAction<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcpAction::ProcessData(seg, src) => write!(
                f,
                "Process_Data(seq={}, len={}, {:?}, from {:?})",
                seg.header.seq,
                seg.payload.len(),
                seg.header.flags,
                src
            ),
            TcpAction::SendSegment(seg) => write!(
                f,
                "Send_Segment(seq={}, ack={}, len={}, {:?})",
                seg.header.seq,
                seg.header.ack,
                seg.payload.len(),
                seg.header.flags
            ),
            TcpAction::UserData(d) => write!(f, "User_Data({} bytes)", d.len()),
            TcpAction::TimerExpiration(k) => write!(f, "Timer_Expiration({k:?})"),
            TcpAction::SetTimer(k, ms) => write!(f, "Set_Timer({k:?}, {ms}ms)"),
            TcpAction::ClearTimer(k) => write!(f, "Clear_Timer({k:?})"),
            TcpAction::CompleteOpen => write!(f, "Complete_Open"),
            TcpAction::CompleteClose => write!(f, "Complete_Close"),
            TcpAction::PeerClose => write!(f, "Peer_Close"),
            TcpAction::PeerReset => write!(f, "Peer_Reset"),
            TcpAction::UserTimeoutFired => write!(f, "User_Timeout"),
            TcpAction::NewConnection(id) => write!(f, "New_Connection({id})"),
            TcpAction::UrgentData(up) => write!(f, "Urgent_Data(up to {up})"),
            TcpAction::AckedTo(seq) => write!(f, "Acked_To({seq})"),
            TcpAction::Loss(ev) => write!(f, "Loss({ev:?})"),
            TcpAction::Attack(ev) => write!(f, "Attack({ev:?})"),
        }
    }
}

impl<P> TcpAction<P> {
    /// A short tag for trace output and tests.
    pub fn tag(&self) -> &'static str {
        match self {
            TcpAction::ProcessData(..) => "Process_Data",
            TcpAction::SendSegment(..) => "Send_Segment",
            TcpAction::UserData(..) => "User_Data",
            TcpAction::TimerExpiration(..) => "Timer_Expiration",
            TcpAction::SetTimer(..) => "Set_Timer",
            TcpAction::ClearTimer(..) => "Clear_Timer",
            TcpAction::CompleteOpen => "Complete_Open",
            TcpAction::CompleteClose => "Complete_Close",
            TcpAction::PeerClose => "Peer_Close",
            TcpAction::PeerReset => "Peer_Reset",
            TcpAction::UserTimeoutFired => "User_Timeout",
            TcpAction::NewConnection(..) => "New_Connection",
            TcpAction::UrgentData(..) => "Urgent_Data",
            TcpAction::AckedTo(..) => "Acked_To",
            TcpAction::Loss(..) => "Loss",
            TcpAction::Attack(..) => "Attack",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_rendering() {
        let a: TcpAction<()> = TcpAction::SetTimer(TimerKind::Resend, 500);
        assert_eq!(format!("{a:?}"), "Set_Timer(Resend, 500ms)");
        let b: TcpAction<()> = TcpAction::UserData(vec![1, 2, 3]);
        assert_eq!(format!("{b:?}"), "User_Data(3 bytes)");
    }

    #[test]
    fn tags_cover_all_variants() {
        let actions: Vec<TcpAction<()>> = vec![
            TcpAction::UserData(vec![]),
            TcpAction::TimerExpiration(TimerKind::Persist),
            TcpAction::SetTimer(TimerKind::DelayedAck, 1),
            TcpAction::ClearTimer(TimerKind::TimeWait),
            TcpAction::CompleteOpen,
            TcpAction::CompleteClose,
            TcpAction::PeerClose,
            TcpAction::PeerReset,
            TcpAction::UserTimeoutFired,
            TcpAction::NewConnection(7),
            TcpAction::AckedTo(Seq(9)),
            TcpAction::Attack(AttackEvent::RstBadSeq),
        ];
        let tags: Vec<_> = actions.iter().map(|a| a.tag()).collect();
        assert_eq!(tags.len(), 12);
        assert!(tags.contains(&"User_Data"));
        assert!(tags.contains(&"Acked_To"));
        assert!(tags.contains(&"Attack"));
    }

    #[test]
    fn attack_event_names() {
        assert_eq!(AttackEvent::RstBadSeq.name(), "RstBadSeq");
        assert_eq!(AttackEvent::AckUnsentData.name(), "AckUnsentData");
        let a: TcpAction<()> = TcpAction::Attack(AttackEvent::AckUnsentData);
        assert_eq!(format!("{a:?}"), "Attack(AckUnsentData)");
    }
}
