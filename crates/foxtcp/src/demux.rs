//! Keyed segment demultiplexing: (local port, remote address, remote
//! port) → connection, in O(1).
//!
//! The paper's Connection module keeps "a list of open connections";
//! with one or two connections per host (all Table 1 ever needed) a
//! linear scan per segment is free, but at N connections every arrival
//! costs O(N) — exactly the hot path Laminar identifies as dominating
//! structured-TCP scaling. This table replaces those scans:
//!
//! * **flows** — established/embryonic connections, keyed by
//!   `(local port, hash(remote addr), remote port)`. The address is
//!   keyed by its [`IpAux::hash`](foxproto::aux::IpAux::hash) value, so
//!   the table is address-type-agnostic; hash collisions are resolved
//!   by the caller's `verify` closure, which re-checks full address
//!   equality (and any state predicate) against the TCB.
//! * **listeners** — connections opened passively (no remote), keyed by
//!   local port.
//! * **by_id** — connection id → current index in the engine's table.
//! * **ports** — local-port reference counts, for ephemeral allocation.
//!
//! Within one bucket, candidate ids are kept in creation order, so the
//! first verified candidate is the same connection the old front-to-back
//! scan found — lookup results are bit-for-bit unchanged, only cheaper.

use std::collections::BTreeMap;

/// Operation counters (the `tables -- scale` experiment reports these).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DemuxStats {
    /// Lookups performed (flow + listener).
    pub lookups: u64,
    /// Candidates examined across all lookups. With a healthy table
    /// this stays ~1 per lookup however many connections exist; the
    /// linear scan it replaces examined ~N/2.
    pub steps: u64,
}

/// The demux table. Ids are the engine's connection ids; indexes are
/// positions in the engine's connection vector (the engine re-indexes
/// after reaping).
#[derive(Default)]
pub struct Demux {
    flows: BTreeMap<(u16, u64, u16), Vec<u32>>,
    listeners: BTreeMap<u16, Vec<u32>>,
    by_id: BTreeMap<u32, usize>,
    ports: BTreeMap<u16, usize>,
    stats: DemuxStats,
}

impl Demux {
    /// An empty table.
    pub fn new() -> Demux {
        Demux::default()
    }

    /// Operation counters.
    pub fn stats(&self) -> DemuxStats {
        self.stats
    }

    /// Registered connections.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// No registered connections?
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Registers a connection at `index`. `flow` is
    /// `(hash(remote addr), remote port)` for connections with a fixed
    /// peer; `None` for listeners.
    pub fn insert(&mut self, id: u32, index: usize, local_port: u16, flow: Option<(u64, u16)>) {
        self.by_id.insert(id, index);
        *self.ports.entry(local_port).or_insert(0) += 1;
        match flow {
            Some((peer, remote_port)) => {
                self.flows.entry((local_port, peer, remote_port)).or_default().push(id)
            }
            None => self.listeners.entry(local_port).or_default().push(id),
        }
    }

    /// Unregisters a connection; `flow` must match what `insert` got.
    pub fn remove(&mut self, id: u32, local_port: u16, flow: Option<(u64, u16)>) {
        self.by_id.remove(&id);
        if let Some(n) = self.ports.get_mut(&local_port) {
            *n -= 1;
            if *n == 0 {
                self.ports.remove(&local_port);
            }
        }
        let bucket = match flow {
            Some((peer, remote_port)) => self.flows.get_mut(&(local_port, peer, remote_port)),
            None => self.listeners.get_mut(&local_port),
        };
        if let Some(ids) = bucket {
            ids.retain(|&x| x != id);
            if ids.is_empty() {
                match flow {
                    Some((peer, remote_port)) => {
                        self.flows.remove(&(local_port, peer, remote_port));
                    }
                    None => {
                        self.listeners.remove(&local_port);
                    }
                }
            }
        }
    }

    /// The connection's current index, if registered.
    pub fn index_of(&self, id: u32) -> Option<usize> {
        self.by_id.get(&id).copied()
    }

    /// Re-points a connection at a new index (after the engine compacts
    /// its table).
    pub fn set_index(&mut self, id: u32, index: usize) {
        if let Some(slot) = self.by_id.get_mut(&id) {
            *slot = index;
        }
    }

    /// Any connection (in any state) using `local_port`?
    pub fn port_in_use(&self, local_port: u16) -> bool {
        self.ports.contains_key(&local_port)
    }

    /// Finds the first (oldest) flow connection matching the key that
    /// `verify(index, id)` accepts — the closure re-checks full address
    /// equality against the TCB, making hash collisions harmless.
    /// Returns `(index, id)`.
    pub fn lookup_flow(
        &mut self,
        local_port: u16,
        peer: u64,
        remote_port: u16,
        mut verify: impl FnMut(usize, u32) -> bool,
    ) -> Option<(usize, u32)> {
        self.stats.lookups += 1;
        let ids = self.flows.get(&(local_port, peer, remote_port))?;
        for &id in ids {
            self.stats.steps += 1;
            // A flow entry without an index would mean insert/remove fell
            // out of sync; skip rather than panic on the rx path.
            let Some(&idx) = self.by_id.get(&id) else { continue };
            if verify(idx, id) {
                return Some((idx, id));
            }
        }
        None
    }

    /// Finds the first (oldest) listener on `local_port` that
    /// `verify(index, id)` accepts. Returns `(index, id)`.
    pub fn lookup_listener(
        &mut self,
        local_port: u16,
        mut verify: impl FnMut(usize, u32) -> bool,
    ) -> Option<(usize, u32)> {
        self.stats.lookups += 1;
        let ids = self.listeners.get(&local_port)?;
        for &id in ids {
            self.stats.steps += 1;
            let Some(&idx) = self.by_id.get(&id) else { continue };
            if verify(idx, id) {
                return Some((idx, id));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_lookup_finds_oldest_verified_candidate() {
        let mut d = Demux::new();
        d.insert(7, 0, 2000, Some((0xabc, 5000)));
        d.insert(9, 1, 2000, Some((0xabc, 5000))); // same bucket (collision or dup key)
                                                   // Verify rejects id 7 (e.g. state mismatch): falls to 9.
        let got = d.lookup_flow(2000, 0xabc, 5000, |_idx, id| id != 7);
        assert_eq!(got, Some((1, 9)));
        // Verify accepts all: oldest wins, like the old front-to-back scan.
        let got = d.lookup_flow(2000, 0xabc, 5000, |_idx, _id| true);
        assert_eq!(got, Some((0, 7)));
        assert_eq!(d.stats().lookups, 2);
        assert_eq!(d.stats().steps, 3);
    }

    #[test]
    fn listener_and_flow_namespaces_are_distinct() {
        let mut d = Demux::new();
        d.insert(1, 0, 2000, None);
        d.insert(2, 1, 2000, Some((5, 6)));
        assert_eq!(d.lookup_listener(2000, |_, _| true), Some((0, 1)));
        assert_eq!(d.lookup_flow(2000, 5, 6, |_, _| true), Some((1, 2)));
        assert_eq!(d.lookup_flow(2000, 5, 7, |_, _| true), None);
        assert_eq!(d.lookup_listener(2001, |_, _| true), None);
    }

    #[test]
    fn remove_and_reindex_track_the_engine_table() {
        let mut d = Demux::new();
        d.insert(1, 0, 1000, Some((1, 1)));
        d.insert(2, 1, 1000, Some((2, 2)));
        d.insert(3, 2, 1001, None);
        assert!(d.port_in_use(1000));
        d.remove(1, 1000, Some((1, 1)));
        assert!(d.port_in_use(1000), "port refcount survives one of two users");
        // Engine compacted: id 2 now at index 0, id 3 at 1.
        d.set_index(2, 0);
        d.set_index(3, 1);
        assert_eq!(d.index_of(2), Some(0));
        assert_eq!(d.lookup_flow(1000, 2, 2, |_, _| true), Some((0, 2)));
        d.remove(2, 1000, Some((2, 2)));
        assert!(!d.port_in_use(1000));
        assert_eq!(d.lookup_flow(1000, 2, 2, |_, _| true), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn port_refcounts_span_flows_and_listeners() {
        let mut d = Demux::new();
        d.insert(1, 0, 2000, None);
        d.insert(2, 1, 2000, Some((9, 9)));
        d.remove(1, 2000, None);
        assert!(d.port_in_use(2000));
        d.remove(2, 2000, Some((9, 9)));
        assert!(!d.port_in_use(2000));
        assert!(d.is_empty());
    }
}
