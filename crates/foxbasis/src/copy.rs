//! Data-copy routines, the second "data-touching" operation the paper
//! measures (§5).
//!
//! The paper's copy routines were written in SML and ran at about
//! 300 µs/KB for word-aligned copies on a DECstation 5000/125 —
//! roughly one fifth the speed of the C library `bcopy` (61 µs/KB) —
//! because "the current compiler fails to optimize accesses to
//! successive elements of arrays and thus checks array bounds on every
//! access and recomputes pointers on every access".
//!
//! Three routines reproduce the comparison:
//! * [`checked_word_copy`] — the paper's SML style: explicit indices,
//!   4 bytes per iteration, a bounds check on every single access (we
//!   force the checks through [`WordArray`]'s checked accessors so the
//!   optimizer cannot hoist them, as the 1994 SML/NJ compiler could not);
//! * [`byte_copy`] — the naive one-byte-at-a-time variant;
//! * [`optimized_copy`] — the `bcopy` equivalent (`copy_from_slice`,
//!   which lowers to `memcpy`).
//!
//! The `copy` Criterion bench measures all three; the virtual cost model
//! charges the paper's constants.

use crate::wordarray::WordArray;

/// Copies `src` into `dst` the way the paper's SML copy loop did: word
/// at a time, with a bounds check on every access.
///
/// # Panics
/// Panics if `dst` is shorter than `src`.
pub fn checked_word_copy(src: &WordArray, dst: &mut WordArray) {
    assert!(dst.len() >= src.len(), "checked_word_copy: destination too short");
    let limit = src.len() & !3;
    let mut n = 0;
    // Tail-recursive loop in the original; the compiler kept the
    // arguments in registers but re-checked bounds each access.
    while n < limit {
        let word = src.sub4(n);
        dst.update4(n, word);
        n += 4;
    }
    while n < src.len() {
        let b = src.sub1(n);
        dst.update1(n, b);
        n += 1;
    }
}

/// Copies `src` into `dst` one byte at a time with per-access checks.
///
/// # Panics
/// Panics if `dst` is shorter than `src`.
pub fn byte_copy(src: &WordArray, dst: &mut WordArray) {
    assert!(dst.len() >= src.len(), "byte_copy: destination too short");
    let mut n = 0;
    while n < src.len() {
        let b = src.sub1(n);
        dst.update1(n, b);
        n += 1;
    }
}

/// Copies `src` into the front of `dst` using the platform `memcpy`
/// (the `bcopy` of the paper's comparison).
///
/// # Panics
/// Panics if `dst` is shorter than `src`.
pub fn optimized_copy(src: &[u8], dst: &mut [u8]) {
    assert!(dst.len() >= src.len(), "optimized_copy: destination too short");
    dst[..src.len()].copy_from_slice(src);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arr(data: &[u8]) -> WordArray {
        WordArray::from_slice(data)
    }

    #[test]
    fn word_copy_copies_all_lengths() {
        for len in 0..32 {
            let src: Vec<u8> = (0..len as u8).collect();
            let mut dst = WordArray::new(len);
            checked_word_copy(&arr(&src), &mut dst);
            assert_eq!(dst.as_slice(), &src[..]);
        }
    }

    #[test]
    fn byte_copy_copies() {
        let src = arr(b"hello world");
        let mut dst = WordArray::new(16);
        byte_copy(&src, &mut dst);
        assert_eq!(&dst.as_slice()[..11], b"hello world");
    }

    #[test]
    fn optimized_copy_copies() {
        let mut dst = [0u8; 8];
        optimized_copy(b"abcd", &mut dst);
        assert_eq!(&dst[..4], b"abcd");
    }

    #[test]
    #[should_panic(expected = "destination too short")]
    fn word_copy_short_destination_panics() {
        let mut dst = WordArray::new(2);
        checked_word_copy(&arr(b"abcdef"), &mut dst);
    }

    #[test]
    #[should_panic(expected = "destination too short")]
    fn optimized_copy_short_destination_panics() {
        let mut dst = [0u8; 1];
        optimized_copy(b"ab", &mut dst);
    }

    proptest! {
        #[test]
        fn all_copies_agree(src in proptest::collection::vec(any::<u8>(), 0..512), pad in 0usize..8) {
            let a = arr(&src);
            let mut d1 = WordArray::new(src.len() + pad);
            let mut d2 = WordArray::new(src.len() + pad);
            let mut d3 = vec![0u8; src.len() + pad];
            checked_word_copy(&a, &mut d1);
            byte_copy(&a, &mut d2);
            optimized_copy(&src, &mut d3);
            prop_assert_eq!(&d1.as_slice()[..src.len()], &src[..]);
            prop_assert_eq!(&d2.as_slice()[..src.len()], &src[..]);
            prop_assert_eq!(&d3[..src.len()], &src[..]);
        }
    }
}
