//! A fixed-capacity byte ring buffer.
//!
//! TCP's send and receive buffers are bounded byte queues: the receive
//! window the connection advertises is exactly the free space of the
//! receive ring (the paper standardizes it to 4096 bytes for the Table 1
//! benchmark), and the send ring holds bytes the user has written but the
//! Send module has not yet segmented.

use std::fmt;

/// A fixed-capacity FIFO of bytes.
///
/// ```
/// use foxbasis::ring::RingBuffer;
/// let mut ring = RingBuffer::new(8);
/// assert_eq!(ring.write(b"hello"), 5);
/// assert_eq!(ring.free(), 3); // the window a TCP would advertise
/// let mut out = [0u8; 8];
/// assert_eq!(ring.read(&mut out), 5);
/// assert_eq!(&out[..5], b"hello");
/// ```
pub struct RingBuffer {
    data: Vec<u8>,
    /// Index of the first valid byte.
    head: usize,
    /// Number of valid bytes.
    len: usize,
}

impl RingBuffer {
    /// Creates a ring holding at most `capacity` bytes.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer { data: vec![0; capacity], head: 0, len: 0 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Bytes currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bytes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free space, i.e. how many more bytes [`write`](Self::write) will
    /// accept. For a TCP receive buffer this is the window to advertise.
    pub fn free(&self) -> usize {
        self.capacity() - self.len
    }

    /// Appends as much of `src` as fits; returns the number of bytes
    /// accepted.
    pub fn write(&mut self, src: &[u8]) -> usize {
        let n = src.len().min(self.free());
        let cap = self.capacity();
        let mut at = (self.head + self.len) % cap;
        for &b in &src[..n] {
            self.data[at] = b;
            at = (at + 1) % cap;
        }
        self.len += n;
        n
    }

    /// Removes up to `dst.len()` bytes into `dst`; returns the number of
    /// bytes produced.
    pub fn read(&mut self, dst: &mut [u8]) -> usize {
        let n = self.peek(dst);
        self.skip(n);
        n
    }

    /// Copies up to `dst.len()` bytes into `dst` without consuming them;
    /// returns the number of bytes copied.
    pub fn peek(&self, dst: &mut [u8]) -> usize {
        let n = dst.len().min(self.len);
        let cap = self.capacity();
        for (i, slot) in dst[..n].iter_mut().enumerate() {
            *slot = self.data[(self.head + i) % cap];
        }
        n
    }

    /// Copies up to `max` bytes starting `offset` bytes past the head,
    /// without consuming anything. Used by the retransmission path, which
    /// must be able to re-read bytes that are sent but unacknowledged.
    pub fn peek_at(&self, offset: usize, dst: &mut [u8]) -> usize {
        if offset >= self.len {
            return 0;
        }
        let n = dst.len().min(self.len - offset);
        let cap = self.capacity();
        for (i, slot) in dst[..n].iter_mut().enumerate() {
            *slot = self.data[(self.head + offset + i) % cap];
        }
        n
    }

    /// Like [`RingBuffer::peek_at`], but also folds the RFC 1071
    /// ones-complement sum of the copied bytes **in the same pass** —
    /// the paper's Fig. 10 combined copy+checksum idea, used by the TCP
    /// segment builder so the payload is touched exactly once on the
    /// send side. Returns `(bytes copied, ones-complement sum)`.
    pub fn peek_at_sum(&self, offset: usize, dst: &mut [u8]) -> (usize, u16) {
        if offset >= self.len {
            return (0, 0);
        }
        let n = dst.len().min(self.len - offset);
        let cap = self.capacity();
        let mut sum: u32 = 0;
        let mut i = 0;
        // Word-at-a-time with deferred carries, folding as the bytes
        // land in `dst`.
        while i + 1 < n {
            let hi = self.data[(self.head + offset + i) % cap];
            let lo = self.data[(self.head + offset + i + 1) % cap];
            dst[i] = hi;
            dst[i + 1] = lo;
            sum += u32::from(u16::from_be_bytes([hi, lo]));
            if sum >= 0xffff_0000 {
                sum = (sum & 0xffff) + (sum >> 16);
            }
            i += 2;
        }
        if i < n {
            let b = self.data[(self.head + offset + i) % cap];
            dst[i] = b;
            sum += u32::from(b) << 8;
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        (n, sum as u16)
    }

    /// Discards up to `n` bytes from the front; returns the number
    /// discarded.
    pub fn skip(&mut self, n: usize) -> usize {
        let n = n.min(self.len);
        self.head = (self.head + n) % self.capacity();
        self.len -= n;
        n
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

impl fmt::Debug for RingBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RingBuffer({}/{} bytes)", self.len, self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut r = RingBuffer::new(8);
        assert_eq!(r.write(b"hello"), 5);
        assert_eq!(r.len(), 5);
        assert_eq!(r.free(), 3);
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf), 5);
        assert_eq!(&buf[..5], b"hello");
        assert!(r.is_empty());
    }

    #[test]
    fn write_truncates_at_capacity() {
        let mut r = RingBuffer::new(4);
        assert_eq!(r.write(b"abcdef"), 4);
        assert_eq!(r.free(), 0);
        assert_eq!(r.write(b"x"), 0);
        let mut buf = [0u8; 4];
        r.read(&mut buf);
        assert_eq!(&buf, b"abcd");
    }

    #[test]
    fn wraps_around() {
        let mut r = RingBuffer::new(4);
        r.write(b"abc");
        let mut buf = [0u8; 2];
        r.read(&mut buf);
        assert_eq!(&buf, b"ab");
        assert_eq!(r.write(b"def"), 3);
        let mut out = [0u8; 4];
        assert_eq!(r.read(&mut out), 4);
        assert_eq!(&out, b"cdef");
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = RingBuffer::new(8);
        r.write(b"data");
        let mut buf = [0u8; 4];
        assert_eq!(r.peek(&mut buf), 4);
        assert_eq!(&buf, b"data");
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn peek_at_offset_for_retransmission() {
        let mut r = RingBuffer::new(8);
        r.write(b"abcdef");
        let mut buf = [0u8; 3];
        assert_eq!(r.peek_at(2, &mut buf), 3);
        assert_eq!(&buf, b"cde");
        assert_eq!(r.peek_at(6, &mut buf), 0);
        assert_eq!(r.peek_at(5, &mut buf), 1);
        assert_eq!(buf[0], b'f');
    }

    #[test]
    fn peek_at_wraps() {
        let mut r = RingBuffer::new(4);
        r.write(b"abcd");
        r.skip(3);
        r.write(b"efg");
        let mut buf = [0u8; 4];
        assert_eq!(r.peek_at(1, &mut buf), 3);
        assert_eq!(&buf[..3], b"efg");
    }

    #[test]
    fn skip_bounds() {
        let mut r = RingBuffer::new(4);
        r.write(b"ab");
        assert_eq!(r.skip(10), 2);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = RingBuffer::new(0);
    }

    #[test]
    fn peek_at_sum_matches_separate_passes() {
        let mut r = RingBuffer::new(64);
        // Wrap the ring: fill, drain, refill so head is mid-buffer.
        r.write(&[0u8; 40]);
        r.skip(40);
        let data: Vec<u8> = (0..50u8).map(|i| i.wrapping_mul(7)).collect();
        r.write(&data);
        for (offset, want) in [(0usize, 50usize), (3, 47), (49, 1), (50, 0)] {
            let mut a = vec![0u8; want.max(1)];
            let mut b = vec![0u8; want.max(1)];
            let plain = r.peek_at(offset, &mut a);
            let (n, sum) = r.peek_at_sum(offset, &mut b);
            assert_eq!(n, plain);
            assert_eq!(a[..n], b[..n]);
            assert_eq!(sum, crate::checksum::word_check(&a[..n]), "offset {offset}");
        }
    }

    #[test]
    fn stress_sequential_integrity() {
        // Pump a pseudo-random byte stream through a tiny ring and verify
        // the output equals the input.
        let mut r = RingBuffer::new(7);
        let src: Vec<u8> = (0..1000u32).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
        let mut out = Vec::new();
        let mut written = 0;
        while out.len() < src.len() {
            written += r.write(&src[written..(written + 3).min(src.len())]);
            let mut buf = [0u8; 2];
            let n = r.read(&mut buf);
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out, src);
    }
}
