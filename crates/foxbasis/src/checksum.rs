//! The Internet checksum (RFC 1071), including a direct Rust rendering of
//! the paper's Fig. 10 `word_check` loop.
//!
//! The paper's checksum is "optimized using the techniques described by
//! Braden, Borman, and Partridge" (RFC 1071): it loads 32 bits at a time,
//! adds the two 16-bit halves into a 32-bit accumulator, and **defers
//! carry propagation** — up to 16 bits of overflow accumulate in the top
//! half of the 4-byte sum, and the result is re-normalized once at the
//! end. Code outside the loop ensures no more than 2^16 16-bit quantities
//! are summed between normalizations. At 343 µs/KB it beat the x-kernel's
//! byte-oriented routine (375 µs/KB) despite SML's bounds checks.
//!
//! This module provides:
//! * [`word_check`] — the Fig. 10 algorithm (the fast path);
//! * [`byte_check`] — the "slower algorithm" the x-kernel used, summing
//!   16 bits at a time with immediate carry folding (the baseline for the
//!   §5 checksum comparison);
//! * [`ChecksumAccum`] — a streaming accumulator so pseudo-header, header
//!   and payload can be summed without concatenation;
//! * [`incremental_update`] — RFC 1624 incremental checksum adjustment.
//!
//! All functions compute the same mathematical value (verified by
//! property tests): the 16-bit ones-complement sum of the data taken as
//! big-endian 16-bit words, with a trailing odd byte padded with zero.

/// Number of 32-bit iterations the Fig. 10 loop may run before the
/// deferred carries in the top half of the accumulator could overflow.
///
/// Each iteration adds at most `2 * 0xffff < 2^17`; a `u32` therefore
/// safely absorbs `2^32 / 2^17 = 2^15` iterations between
/// normalizations. The paper states the outer code ensures "no more than
/// 2^16 2-byte quantities are summed", i.e. 2^15 words — the same bound.
const NORMALIZE_EVERY: usize = 1 << 15;

/// Folds the deferred carries of a 32-bit ones-complement accumulator
/// down to 16 bits ("the result is re-normalized at the end of the
/// loop").
#[inline]
fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// The ones-complement sum of `data` (not inverted), using the paper's
/// Fig. 10 algorithm: 32-bit loads, deferred carries, one normalization
/// per `NORMALIZE_EVERY` words.
///
/// Odd-length data is treated as if padded with a trailing zero byte, as
/// RFC 1071 specifies ("code outside the loop ... checks odd bytes").
pub fn word_check(data: &[u8]) -> u16 {
    let mut accumulator: u32 = 0;
    let mut n = 0;
    // The paper's caller guarantees n mod 4 = 0 and limit mod 4 = 0; here
    // `limit` is the largest 4-byte-aligned prefix and the tail is
    // handled by the "check odd bytes, renormalize" epilogue.
    let limit = data.len() & !3;
    let mut since_normalize = 0;
    while n < limit {
        // val byte4 = Byte4.sub (b, n)
        let byte4 = u32::from_be_bytes([data[n], data[n + 1], data[n + 2], data[n + 3]]);
        // val low  = Byte4.& (byte4, 4uxffff)
        let low = byte4 & 0xffff;
        // val high = Byte4.>> (byte4, 16)
        let high = byte4 >> 16;
        // val res1 = Byte4.+ (high, low); val sum = Byte4.+ (res1, partial)
        accumulator = accumulator.wrapping_add(high + low);
        n += 4;
        since_normalize += 1;
        if since_normalize == NORMALIZE_EVERY {
            accumulator = u32::from(fold(accumulator));
            since_normalize = 0;
        }
    }
    // Epilogue: 2-byte and odd-byte tails.
    if data.len() - n >= 2 {
        accumulator = accumulator.wrapping_add(u32::from(u16::from_be_bytes([data[n], data[n + 1]])));
        n += 2;
    }
    if n < data.len() {
        accumulator = accumulator.wrapping_add(u32::from(data[n]) << 8);
    }
    fold(accumulator)
}

/// The ones-complement sum of `data` using the x-kernel's "slower
/// algorithm": one 16-bit word per step with immediate carry folding.
pub fn byte_check(data: &[u8]) -> u16 {
    let mut sum: u16 = 0;
    let mut chunks = data.chunks_exact(2);
    for pair in &mut chunks {
        let word = u16::from_be_bytes([pair[0], pair[1]]);
        let (s, carry) = sum.overflowing_add(word);
        sum = s + u16::from(carry);
    }
    if let [odd] = chunks.remainder() {
        let (s, carry) = sum.overflowing_add(u16::from(*odd) << 8);
        sum = s + u16::from(carry);
    }
    sum
}

/// The ones-complement sum of `data` (not inverted). Alias for the fast
/// algorithm; protocol code should use this.
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    word_check(data)
}

/// The Internet checksum of `data`: the ones-complement of the
/// ones-complement sum. This is the value stored in a header checksum
/// field.
///
/// ```
/// use foxbasis::checksum::{checksum, ones_complement_sum};
/// let mut packet = vec![0x45, 0x00, 0x00, 0x1c];
/// let c = checksum(&packet);
/// packet.extend_from_slice(&c.to_be_bytes());
/// // A packet with its checksum in place sums to negative zero:
/// assert_eq!(ones_complement_sum(&packet), 0xffff);
/// ```
pub fn checksum(data: &[u8]) -> u16 {
    !word_check(data)
}

/// Adds two folded ones-complement partial sums.
pub fn add_sums(a: u16, b: u16) -> u16 {
    fold(u32::from(a) + u32::from(b))
}

/// RFC 1624 incremental update: given the old checksum *field* value and
/// a 16-bit field change `old_word -> new_word`, returns the new checksum
/// field value without re-summing the packet.
pub fn incremental_update(old_check: u16, old_word: u16, new_word: u16) -> u16 {
    // HC' = ~(C + (-m) + m') computed in ones-complement arithmetic:
    // HC' = ~(~HC + ~m + m')
    !fold(u32::from(!old_check) + u32::from(!old_word) + u32::from(new_word))
}

/// A streaming ones-complement summer.
///
/// TCP and UDP checksums cover a pseudo-header, the transport header, and
/// the payload; `ChecksumAccum` lets the Action module sum them in place
/// (the paper copies data only once — summing must not force another
/// copy). Handles odd-length chunks at any position by tracking byte
/// parity.
#[derive(Debug, Clone, Default)]
pub struct ChecksumAccum {
    sum: u32,
    /// True if an odd number of bytes has been absorbed so far, i.e. the
    /// next byte is the low half of a 16-bit word.
    half: bool,
}

impl ChecksumAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        ChecksumAccum::default()
    }

    /// Absorbs `data`.
    pub fn add_bytes(&mut self, data: &[u8]) -> &mut Self {
        let mut i = 0;
        if self.half && !data.is_empty() {
            // Complete the straddling word: the pending byte was the high
            // half.
            self.sum += u32::from(data[0]);
            self.sum = u32::from(fold(self.sum));
            i = 1;
            self.half = false;
        }
        let even_end = i + ((data.len() - i) & !1);
        while i < even_end {
            self.sum += u32::from(u16::from_be_bytes([data[i], data[i + 1]]));
            i += 2;
            if self.sum >= 0xffff_0000 {
                self.sum = u32::from(fold(self.sum));
            }
        }
        if i < data.len() {
            self.sum += u32::from(data[i]) << 8;
            self.half = true;
        }
        self
    }

    /// Absorbs a 16-bit word (e.g. a pseudo-header length field).
    ///
    /// # Panics
    /// Panics if called at an odd byte offset — pseudo-header fields are
    /// always word-aligned, so this indicates a protocol bug.
    pub fn add_word(&mut self, word: u16) -> &mut Self {
        assert!(!self.half, "add_word at odd byte offset");
        self.sum += u32::from(word);
        self
    }

    /// The folded, non-inverted ones-complement sum so far.
    pub fn sum(&self) -> u16 {
        fold(self.sum)
    }

    /// The checksum field value (inverted sum).
    pub fn finish(&self) -> u16 {
        !self.sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference implementation straight from RFC 1071's definition.
    fn reference_sum(data: &[u8]) -> u16 {
        let mut sum: u64 = 0;
        let mut i = 0;
        while i + 1 < data.len() {
            sum += u64::from(u16::from_be_bytes([data[i], data[i + 1]]));
            i += 2;
        }
        if i < data.len() {
            sum += u64::from(data[i]) << 8;
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        sum as u16
    }

    #[test]
    fn rfc1071_worked_example() {
        // The classic example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2
        // before inversion.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(word_check(&data), 0xddf2);
        assert_eq!(byte_check(&data), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(word_check(&[]), 0);
        assert_eq!(word_check(&[0xff]), 0xff00);
        assert_eq!(word_check(&[0x12, 0x34]), 0x1234);
        assert_eq!(word_check(&[0x12, 0x34, 0x56]), 0x1234 + 0x5600);
    }

    #[test]
    fn verifying_a_checksummed_packet_yields_ffff() {
        // Inserting the checksum into the data makes the total sum 0xffff
        // (ones-complement negative zero) — how receivers validate.
        let mut packet = vec![0x45, 0x00, 0x00, 0x1c, 0xab, 0xcd, 0x00, 0x00, 0x40, 0x11];
        let c = checksum(&packet);
        packet.extend_from_slice(&c.to_be_bytes());
        assert_eq!(word_check(&packet), 0xffff);
    }

    #[test]
    fn deferred_carry_normalization_on_large_input() {
        // All-0xff data maximizes carries; exceed NORMALIZE_EVERY words
        // to exercise the mid-loop renormalization.
        let data = vec![0xffu8; (NORMALIZE_EVERY + 100) * 4];
        assert_eq!(word_check(&data), reference_sum(&data));
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut packet = vec![0x45, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06];
        let old_check = checksum(&packet);
        let old_word = u16::from_be_bytes([packet[2], packet[3]]);
        let new_word: u16 = 0xbeef;
        packet[2..4].copy_from_slice(&new_word.to_be_bytes());
        assert_eq!(incremental_update(old_check, old_word, new_word), checksum(&packet));
    }

    #[test]
    fn accumulator_matches_whole_buffer() {
        let data: Vec<u8> = (0..255u8).collect();
        let mut acc = ChecksumAccum::new();
        acc.add_bytes(&data[..10]).add_bytes(&data[10..11]).add_bytes(&data[11..100]).add_bytes(&data[100..]);
        assert_eq!(acc.sum(), word_check(&data));
        assert_eq!(acc.finish(), checksum(&data));
    }

    #[test]
    fn accumulator_words() {
        let mut acc = ChecksumAccum::new();
        acc.add_word(0x0102).add_word(0x0304);
        assert_eq!(acc.sum(), word_check(&[1, 2, 3, 4]));
    }

    #[test]
    #[should_panic(expected = "odd byte offset")]
    fn accumulator_word_at_odd_offset_panics() {
        let mut acc = ChecksumAccum::new();
        acc.add_bytes(&[1]).add_word(0x0102);
    }

    #[test]
    fn add_sums_combines_partials() {
        let a = [1u8, 2, 3, 4];
        let b = [5u8, 6, 7, 8];
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(add_sums(word_check(&a), word_check(&b)), word_check(&whole));
    }

    proptest! {
        #[test]
        fn algorithms_agree(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let r = reference_sum(&data);
            prop_assert_eq!(word_check(&data), r);
            prop_assert_eq!(byte_check(&data), r);
        }

        #[test]
        fn accumulator_agrees_under_arbitrary_splits(
            data in proptest::collection::vec(any::<u8>(), 0..1024),
            splits in proptest::collection::vec(0usize..1024, 0..8),
        ) {
            let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
            cuts.push(0);
            cuts.push(data.len());
            cuts.sort_unstable();
            let mut acc = ChecksumAccum::new();
            for w in cuts.windows(2) {
                acc.add_bytes(&data[w[0]..w[1]]);
            }
            prop_assert_eq!(acc.sum(), reference_sum(&data));
        }

        #[test]
        fn checksummed_data_validates(data in proptest::collection::vec(any::<u8>(), 2..512)) {
            // Append the checksum (even-aligned) and confirm validation.
            let mut data = data;
            if data.len() % 2 == 1 { data.push(0); }
            let c = checksum(&data);
            data.extend_from_slice(&c.to_be_bytes());
            prop_assert_eq!(word_check(&data), 0xffff);
        }

        #[test]
        fn incremental_update_is_correct(
            data in proptest::collection::vec(any::<u8>(), 4..256),
            at in 0usize..126,
            new_word: u16,
        ) {
            let mut data = data;
            if data.len() % 2 == 1 { data.push(0); }
            let at = (at * 2) % data.len();
            let old_check = checksum(&data);
            let old_word = u16::from_be_bytes([data[at], data[at+1]]);
            data[at..at+2].copy_from_slice(&new_word.to_be_bytes());
            prop_assert_eq!(incremental_update(old_check, old_word, new_word), checksum(&data));
        }
    }
}
