//! The FIFO queue of the Fox Basis (`structure Q: FIFO` in the paper's
//! Fig. 6).
//!
//! Two of the central data structures of the structured TCP are FIFOs:
//! the per-connection `to_do` queue of [`TcpAction`]s — the heart of the
//! quasi-synchronous control structure — and the queue of out-of-order
//! incoming segments. The paper also notes (§4) that replacing this FIFO
//! with a priority queue would let particular actions (e.g. ones that
//! affect packet latency) run at higher priority; [`Fifo::requeue_front`]
//! exists so such experiments stay cheap.
//!
//! [`TcpAction`]: ../../foxtcp/action/enum.TcpAction.html

use std::collections::VecDeque;
use std::fmt;

/// A first-in first-out queue.
#[derive(Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
}

impl<T> Fifo<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Fifo { items: VecDeque::new() }
    }

    /// Creates an empty queue with room for `n` elements before
    /// reallocating.
    pub fn with_capacity(n: usize) -> Self {
        Fifo { items: VecDeque::with_capacity(n) }
    }

    /// Appends `item` at the tail of the queue.
    pub fn add(&mut self, item: T) {
        self.items.push_back(item);
    }

    /// Removes and returns the item at the head of the queue, or `None`
    /// if the queue is empty. Named after the paper's `Q.next`, not the
    /// `Iterator` method.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Returns a reference to the head of the queue without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Puts `item` back at the *head* of the queue so it is the next item
    /// returned — the hook the paper mentions for experimenting with
    /// scheduling priorities.
    pub fn requeue_front(&mut self, item: T) {
        self.items.push_front(item);
    }

    /// Number of queued items.
    pub fn size(&self) -> usize {
        self.items.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Removes all items.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates from head to tail without consuming the queue.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes every item for which `keep` returns false, preserving the
    /// order of the survivors.
    pub fn retain(&mut self, keep: impl FnMut(&T) -> bool) {
        self.items.retain(keep);
    }

    /// Drains the whole queue head-to-tail into a vector.
    pub fn drain_all(&mut self) -> Vec<T> {
        self.items.drain(..).collect()
    }

    /// Removes and returns the first item matching `pred`, if any —
    /// the hook that turns the FIFO into the priority queue the paper
    /// proposes for latency-sensitive actions (§4).
    pub fn take_first_match(&mut self, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let at = self.items.iter().position(&mut pred)?;
        self.items.remove(at)
    }
}

impl<T> Default for Fifo<T> {
    fn default() -> Self {
        Fifo::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for Fifo<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.items.iter()).finish()
    }
}

impl<T> FromIterator<T> for Fifo<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Fifo { items: iter.into_iter().collect() }
    }
}

impl<T> IntoIterator for Fifo<T> {
    type Item = T;
    type IntoIter = std::collections::vec_deque::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = Fifo::new();
        q.add(1);
        q.add(2);
        q.add(3);
        assert_eq!(q.size(), 3);
        assert_eq!(q.next(), Some(1));
        assert_eq!(q.next(), Some(2));
        assert_eq!(q.next(), Some(3));
        assert_eq!(q.next(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = Fifo::new();
        q.add("a");
        assert_eq!(q.peek(), Some(&"a"));
        assert_eq!(q.size(), 1);
        assert_eq!(q.next(), Some("a"));
    }

    #[test]
    fn requeue_front_takes_priority() {
        let mut q = Fifo::new();
        q.add(1);
        q.add(2);
        let head = q.next().unwrap();
        q.requeue_front(head);
        assert_eq!(q.next(), Some(1));
        assert_eq!(q.next(), Some(2));
    }

    #[test]
    fn retain_preserves_order() {
        let mut q: Fifo<i32> = (0..10).collect();
        q.retain(|x| x % 2 == 0);
        assert_eq!(q.drain_all(), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn clear_and_iter() {
        let mut q: Fifo<i32> = (0..3).collect();
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn into_iter_order() {
        let q: Fifo<i32> = (0..4).collect();
        assert_eq!(q.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }
}

#[cfg(test)]
mod priority_tests {
    use super::*;

    #[test]
    fn take_first_match_preserves_rest() {
        let mut q: Fifo<i32> = (0..6).collect();
        assert_eq!(q.take_first_match(|x| x % 2 == 1), Some(1));
        assert_eq!(q.drain_all(), vec![0, 2, 3, 4, 5]);
    }

    #[test]
    fn take_first_match_none() {
        let mut q: Fifo<i32> = (0..3).collect();
        assert_eq!(q.take_first_match(|x| *x > 10), None);
        assert_eq!(q.size(), 3);
    }
}
