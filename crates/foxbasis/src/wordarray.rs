//! Safe byte arrays with 1/2/4-byte access — the Rust rendering of the
//! Fox Project's language extensions.
//!
//! The paper (§2) extends SML with "1-byte, 2-byte, and 4-byte unsigned
//! integer types, and in-lined byte arrays", used to build packets and
//! talk to the outside world while staying type- and memory-safe. Rust
//! has the integer types natively; [`WordArray`] supplies the byte-array
//! half: a growable byte buffer with *big-endian* (network order)
//! multi-byte accessors mirroring the `Byte2.sub`/`Byte4.sub` and update
//! operations the paper's Fig. 10 checksum loop uses.
//!
//! All accesses are bounds-checked, exactly like the SML original — the
//! paper's performance discussion (§5) attributes the copy-loop slowness
//! to precisely these checks, which is what the `copy` benchmarks
//! measure.

use std::fmt;

/// Error returned by the checked (`try_*`) accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Offset that was asked for.
    pub offset: usize,
    /// Width of the access in bytes.
    pub width: usize,
    /// Length of the array.
    pub len: usize,
}

impl fmt::Display for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wordarray access of {} bytes at offset {} exceeds length {}",
            self.width, self.offset, self.len
        )
    }
}

impl std::error::Error for Bounds {}

/// A byte array with network-order word accessors.
#[derive(Clone, PartialEq, Eq)]
pub struct WordArray {
    bytes: Vec<u8>,
}

impl WordArray {
    /// A zero-filled array of `len` bytes.
    pub fn new(len: usize) -> Self {
        WordArray { bytes: vec![0; len] }
    }

    /// Wraps an existing byte vector.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        WordArray { bytes }
    }

    /// Copies a slice.
    pub fn from_slice(bytes: &[u8]) -> Self {
        WordArray { bytes: bytes.to_vec() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if zero-length.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The underlying bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// The underlying bytes, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Consumes the array, yielding its bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.bytes
    }

    fn check(&self, offset: usize, width: usize) -> Result<(), Bounds> {
        if offset.checked_add(width).is_none_or(|end| end > self.bytes.len()) {
            Err(Bounds { offset, width, len: self.bytes.len() })
        } else {
            Ok(())
        }
    }

    /// `Byte1.sub`: reads the byte at `offset`.
    pub fn sub1(&self, offset: usize) -> u8 {
        self.try_sub1(offset).unwrap_or_else(|e| panic!("{e}"))
    }

    /// `Byte2.sub`: reads a big-endian 16-bit word at `offset`.
    pub fn sub2(&self, offset: usize) -> u16 {
        self.try_sub2(offset).unwrap_or_else(|e| panic!("{e}"))
    }

    /// `Byte4.sub`: reads a big-endian 32-bit word at `offset`.
    pub fn sub4(&self, offset: usize) -> u32 {
        self.try_sub4(offset).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked variant of [`sub1`](Self::sub1).
    pub fn try_sub1(&self, offset: usize) -> Result<u8, Bounds> {
        self.check(offset, 1)?;
        Ok(self.bytes[offset])
    }

    /// Checked variant of [`sub2`](Self::sub2).
    pub fn try_sub2(&self, offset: usize) -> Result<u16, Bounds> {
        self.check(offset, 2)?;
        Ok(u16::from_be_bytes([self.bytes[offset], self.bytes[offset + 1]]))
    }

    /// Checked variant of [`sub4`](Self::sub4).
    pub fn try_sub4(&self, offset: usize) -> Result<u32, Bounds> {
        self.check(offset, 4)?;
        Ok(u32::from_be_bytes([
            self.bytes[offset],
            self.bytes[offset + 1],
            self.bytes[offset + 2],
            self.bytes[offset + 3],
        ]))
    }

    /// `Byte1.update`: writes the byte at `offset`.
    pub fn update1(&mut self, offset: usize, value: u8) {
        self.try_update1(offset, value).unwrap_or_else(|e| panic!("{e}"))
    }

    /// `Byte2.update`: writes a big-endian 16-bit word at `offset`.
    pub fn update2(&mut self, offset: usize, value: u16) {
        self.try_update2(offset, value).unwrap_or_else(|e| panic!("{e}"))
    }

    /// `Byte4.update`: writes a big-endian 32-bit word at `offset`.
    pub fn update4(&mut self, offset: usize, value: u32) {
        self.try_update4(offset, value).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked variant of [`update1`](Self::update1).
    pub fn try_update1(&mut self, offset: usize, value: u8) -> Result<(), Bounds> {
        self.check(offset, 1)?;
        self.bytes[offset] = value;
        Ok(())
    }

    /// Checked variant of [`update2`](Self::update2).
    pub fn try_update2(&mut self, offset: usize, value: u16) -> Result<(), Bounds> {
        self.check(offset, 2)?;
        self.bytes[offset..offset + 2].copy_from_slice(&value.to_be_bytes());
        Ok(())
    }

    /// Checked variant of [`update4`](Self::update4).
    pub fn try_update4(&mut self, offset: usize, value: u32) -> Result<(), Bounds> {
        self.check(offset, 4)?;
        self.bytes[offset..offset + 4].copy_from_slice(&value.to_be_bytes());
        Ok(())
    }

    /// Copies `src` into the array starting at `offset`.
    pub fn write_slice(&mut self, offset: usize, src: &[u8]) -> Result<(), Bounds> {
        self.check(offset, src.len())?;
        self.bytes[offset..offset + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Borrows `len` bytes starting at `offset`.
    pub fn read_slice(&self, offset: usize, len: usize) -> Result<&[u8], Bounds> {
        self.check(offset, len)?;
        Ok(&self.bytes[offset..offset + len])
    }

    /// Hexadecimal dump, 16 bytes per line, for `do_prints` diagnostics.
    pub fn hexdump(&self) -> String {
        let mut out = String::new();
        for (i, chunk) in self.bytes.chunks(16).enumerate() {
            out.push_str(&format!("{:04x}:", i * 16));
            for b in chunk {
                out.push_str(&format!(" {b:02x}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for WordArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WordArray[{} bytes]", self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_words() {
        let mut a = WordArray::new(8);
        a.update1(0, 0xab);
        a.update2(2, 0x1234);
        a.update4(4, 0xdeadbeef);
        assert_eq!(a.sub1(0), 0xab);
        assert_eq!(a.sub2(2), 0x1234);
        assert_eq!(a.sub4(4), 0xdeadbeef);
    }

    #[test]
    fn big_endian_layout() {
        let mut a = WordArray::new(4);
        a.update4(0, 0x0102_0304);
        assert_eq!(a.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(a.sub2(0), 0x0102);
        assert_eq!(a.sub2(2), 0x0304);
    }

    #[test]
    fn bounds_errors() {
        let a = WordArray::new(3);
        assert!(a.try_sub4(0).is_err());
        assert!(a.try_sub2(2).is_err());
        assert_eq!(a.try_sub1(2), Ok(0));
        let err = a.try_sub2(2).unwrap_err();
        assert_eq!(err, Bounds { offset: 2, width: 2, len: 3 });
        assert!(err.to_string().contains("offset 2"));
    }

    #[test]
    fn overflowing_offset_is_error_not_panic() {
        let a = WordArray::new(3);
        assert!(a.try_sub4(usize::MAX - 1).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds length")]
    fn unchecked_access_panics() {
        let a = WordArray::new(1);
        let _ = a.sub4(0);
    }

    #[test]
    fn slices() {
        let mut a = WordArray::new(6);
        a.write_slice(2, b"abcd").unwrap();
        assert_eq!(a.read_slice(2, 4).unwrap(), b"abcd");
        assert!(a.write_slice(4, b"xyz").is_err());
        assert!(a.read_slice(5, 2).is_err());
    }

    #[test]
    fn hexdump_format() {
        let a = WordArray::from_slice(&[0u8; 17]);
        let dump = a.hexdump();
        assert!(dump.starts_with("0000:"));
        assert!(dump.contains("0010:"));
        assert_eq!(dump.lines().count(), 2);
    }
}
