//! Typed, bounded observability: the event layer the `do_traces` string
//! log could never be.
//!
//! The paper's central claim is that quasi-synchronous control makes the
//! stack's behaviour totally ordered and deterministic. [`EventSink`]
//! turns that from an assertion into an instrument: every interesting
//! step — a state transition, an executed `to_do` action, a timer
//! set/clear/fire, a segment on the wire, a frame faulted by the
//! simulated Ethernet, a GC pause — is recorded as a typed [`Event`],
//! stamped with virtual time, host id and connection id, into a
//! fixed-capacity ring ([`EventRing`]: overwrite-oldest with a dropped
//! counter, never an unbounded `Vec`).
//!
//! Because execution is totally ordered, two identically-seeded runs
//! produce byte-identical event streams; [`first_divergence`] aligns two
//! streams and reports where (if anywhere) they part — the determinism
//! claim as a debugging tool. [`to_jsonl`] and [`to_chrome_trace`]
//! export a stream for line tools and for Perfetto / `chrome://tracing`
//! (Trace Event Format) respectively.
//!
//! The sink is zero-cost when off: a disabled sink holds no ring, and
//! [`EventSink::emit`] takes the event as a closure that is never run,
//! the same staging trick [`crate::trace::Trace::trace`] uses.

use crate::time::VirtualTime;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

/// Connection id used for events not tied to any connection (wire
/// frames, GC pauses).
pub const NO_CONN: u32 = u32::MAX;

/// TCP flag bits as events carry them (wire order of RFC 793).
pub mod flags {
    /// FIN.
    pub const FIN: u8 = 1;
    /// SYN.
    pub const SYN: u8 = 2;
    /// RST.
    pub const RST: u8 = 4;
    /// PSH.
    pub const PSH: u8 = 8;
    /// ACK.
    pub const ACK: u8 = 16;
    /// URG.
    pub const URG: u8 = 32;
}

/// Renders a flag byte as the conventional `SYN+ACK` notation.
pub fn flags_to_string(bits: u8) -> String {
    let names = [
        (flags::SYN, "SYN"),
        (flags::FIN, "FIN"),
        (flags::RST, "RST"),
        (flags::PSH, "PSH"),
        (flags::ACK, "ACK"),
        (flags::URG, "URG"),
    ];
    let mut out = String::new();
    for (bit, name) in names {
        if bits & bit != 0 {
            if !out.is_empty() {
                out.push('+');
            }
            out.push_str(name);
        }
    }
    if out.is_empty() {
        out.push_str("none");
    }
    out
}

/// One observable step of the stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A connection moved between TCP states.
    StateTransition {
        /// State before.
        from: &'static str,
        /// State after.
        to: &'static str,
        /// What drove the move: a user call (`open`/`close`/`abort`),
        /// a `timer`, or the highest-precedence flag of the arriving
        /// segment (`rst` > `syn` > `fin` > `ack`) — the trigger
        /// vocabulary of `spec/tcp_fsm.txt`, so runtime coverage can be
        /// ratcheted against the extracted state machine.
        cause: &'static str,
    },
    /// A `to_do` action was executed (the paper's quasi-synchronous
    /// unit of work).
    Action {
        /// The action's tag, e.g. `Process_Data`.
        tag: &'static str,
    },
    /// A timer was armed.
    TimerSet {
        /// Which timer.
        timer: &'static str,
        /// Delay it was armed with, in milliseconds.
        after_ms: u64,
    },
    /// A timer was cleared before firing.
    TimerClear {
        /// Which timer.
        timer: &'static str,
    },
    /// A timer expired and its action ran.
    TimerFire {
        /// Which timer.
        timer: &'static str,
    },
    /// A retransmission/recovery episode event (fast retransmit,
    /// recovery entry/exit, partial ACK, RTO, zero-window probe).
    Loss {
        /// Which kind of loss event.
        kind: &'static str,
    },
    /// A TCP segment was handed to the lower layer.
    SegTx {
        /// Sequence number.
        seq: u32,
        /// Acknowledgment number.
        ack: u32,
        /// Payload bytes.
        len: u32,
        /// Flag bits (see [`flags`]).
        flags: u8,
        /// Advertised window.
        wnd: u32,
    },
    /// A TCP segment was received and processed.
    SegRx {
        /// Sequence number.
        seq: u32,
        /// Acknowledgment number.
        ack: u32,
        /// Payload bytes.
        len: u32,
        /// Flag bits (see [`flags`]).
        flags: u8,
        /// Advertised window.
        wnd: u32,
    },
    /// A frame was handed to the simulated wire.
    FrameTx {
        /// Frame length in bytes.
        bytes: u32,
    },
    /// The wire (or a full receive queue) dropped a frame.
    FrameDrop {
        /// `fault` or `overflow`.
        reason: &'static str,
    },
    /// Fault injection flipped a bit in a frame.
    FrameCorrupt,
    /// The in-loop fuzzer deterministically mutated a live TCP segment
    /// on the wire (header-field flip, truncation, option garbling).
    FrameMutate {
        /// Which mutation was applied (e.g. `flip_seq`, `truncate`).
        kind: &'static str,
    },
    /// A middlebox hook rewrote a segment in flight (e.g. MSS clamping
    /// on a SYN).
    FrameRewrite {
        /// Which rewrite was applied (e.g. `mss_clamp`).
        kind: &'static str,
    },
    /// The stack recognized and repelled a state-targeted attack (bad-seq
    /// RST, optimistic ACK for unsent data, ...).
    Attack {
        /// Which attack signature was rejected.
        kind: &'static str,
    },
    /// A frame landed in a port's receive queue.
    FrameDeliver {
        /// Frame length in bytes.
        bytes: u32,
    },
    /// The modeled collector paused the host.
    GcPause {
        /// Pause length in microseconds.
        micros: u64,
    },
    /// A real host memcpy of payload bytes — a [`crate::buf::PacketBuf`]
    /// materialization or fallback reallocation. Purely observational:
    /// the *virtual* cost model charges the paper's per-KB constants
    /// independently of these.
    BufCopy {
        /// The layer that performed the copy (e.g. `tcp`, `ip_reasm`,
        /// `wire`).
        layer: &'static str,
        /// Payload bytes memcpy'd.
        bytes: u32,
    },
}

impl Event {
    /// The event's name, as exports use it.
    pub fn name(&self) -> &'static str {
        match self {
            Event::StateTransition { .. } => "state",
            Event::Action { .. } => "action",
            Event::TimerSet { .. } => "timer_set",
            Event::TimerClear { .. } => "timer_clear",
            Event::TimerFire { .. } => "timer_fire",
            Event::Loss { .. } => "loss",
            Event::SegTx { .. } => "seg_tx",
            Event::SegRx { .. } => "seg_rx",
            Event::FrameTx { .. } => "frame_tx",
            Event::FrameDrop { .. } => "frame_drop",
            Event::FrameCorrupt => "frame_corrupt",
            Event::FrameMutate { .. } => "frame_mutate",
            Event::FrameRewrite { .. } => "frame_rewrite",
            Event::Attack { .. } => "attack",
            Event::FrameDeliver { .. } => "frame_deliver",
            Event::GcPause { .. } => "gc_pause",
            Event::BufCopy { .. } => "buf_copy",
        }
    }

    /// The event's payload as a JSON object (deterministic key order).
    pub fn args_json(&self) -> String {
        let mut s = String::new();
        match self {
            Event::StateTransition { from, to, cause } => {
                let _ = write!(s, "{{\"from\":\"{from}\",\"to\":\"{to}\",\"cause\":\"{cause}\"}}");
            }
            Event::Action { tag } => {
                let _ = write!(s, "{{\"tag\":\"{tag}\"}}");
            }
            Event::TimerSet { timer, after_ms } => {
                let _ = write!(s, "{{\"timer\":\"{timer}\",\"after_ms\":{after_ms}}}");
            }
            Event::TimerClear { timer } => {
                let _ = write!(s, "{{\"timer\":\"{timer}\"}}");
            }
            Event::TimerFire { timer } => {
                let _ = write!(s, "{{\"timer\":\"{timer}\"}}");
            }
            Event::Loss { kind } => {
                let _ = write!(s, "{{\"kind\":\"{kind}\"}}");
            }
            Event::SegTx { seq, ack, len, flags, wnd } | Event::SegRx { seq, ack, len, flags, wnd } => {
                let _ = write!(
                    s,
                    "{{\"seq\":{seq},\"ack\":{ack},\"len\":{len},\"flags\":\"{}\",\"wnd\":{wnd}}}",
                    flags_to_string(*flags)
                );
            }
            Event::FrameTx { bytes } | Event::FrameDeliver { bytes } => {
                let _ = write!(s, "{{\"bytes\":{bytes}}}");
            }
            Event::FrameDrop { reason } => {
                let _ = write!(s, "{{\"reason\":\"{reason}\"}}");
            }
            Event::FrameCorrupt => s.push_str("{}"),
            Event::FrameMutate { kind } | Event::FrameRewrite { kind } | Event::Attack { kind } => {
                let _ = write!(s, "{{\"kind\":\"{kind}\"}}");
            }
            Event::GcPause { micros } => {
                let _ = write!(s, "{{\"micros\":{micros}}}");
            }
            Event::BufCopy { layer, bytes } => {
                let _ = write!(s, "{{\"layer\":\"{layer}\",\"bytes\":{bytes}}}");
            }
        }
        s
    }
}

/// An event with its stamp: when, which host, which connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stamped {
    /// Virtual time of the event.
    pub at: VirtualTime,
    /// The host it happened on.
    pub host: u32,
    /// The connection it belongs to ([`NO_CONN`] if none).
    pub conn: u32,
    /// The event itself.
    pub event: Event,
}

impl Stamped {
    /// One deterministic JSON object (a JSONL line, without newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t\":{},\"host\":{},\"conn\":{},\"ev\":\"{}\",\"args\":{}}}",
            self.at.as_micros(),
            self.host,
            conn_json(self.conn),
            self.event.name(),
            self.event.args_json()
        )
    }
}

fn conn_json(conn: u32) -> String {
    if conn == NO_CONN {
        "null".to_string()
    } else {
        conn.to_string()
    }
}

/// Default ring capacity: enough for a full Table 1 transfer on both
/// hosts without wrapping, small enough to stay a few megabytes.
pub const DEFAULT_RING_CAPACITY: usize = 131_072;

/// The fixed-capacity event store: overwrite-oldest, never unbounded.
#[derive(Debug)]
pub struct EventRing {
    buf: VecDeque<Stamped>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing { buf: VecDeque::with_capacity(capacity.min(4096)), capacity, dropped: 0 }
    }

    /// Appends an event, evicting the oldest if full.
    pub fn push(&mut self, ev: Stamped) {
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<Stamped> {
        self.buf.iter().cloned().collect()
    }

    /// Events stored right now.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum events held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A cheap, cloneable handle instrumented code emits through.
///
/// A disabled sink ([`EventSink::off`]) holds no ring: `emit` is one
/// branch and the event closure never runs. An enabled sink shares one
/// ring across all clones (one merged, totally-ordered stream per run);
/// [`EventSink::for_host`] stamps a per-layer copy with its host id.
#[derive(Clone, Debug)]
pub struct EventSink {
    ring: Option<Rc<RefCell<EventRing>>>,
    host: u32,
}

impl EventSink {
    /// The disabled sink: nothing is recorded, nothing is allocated.
    pub fn off() -> EventSink {
        EventSink { ring: None, host: 0 }
    }

    /// A recording sink with the given ring capacity.
    pub fn recording(capacity: usize) -> EventSink {
        EventSink { ring: Some(Rc::new(RefCell::new(EventRing::new(capacity)))), host: 0 }
    }

    /// A copy of this sink stamping events with `host`.
    pub fn for_host(&self, host: u32) -> EventSink {
        EventSink { ring: self.ring.clone(), host }
    }

    /// True if events are being recorded.
    pub fn is_on(&self) -> bool {
        self.ring.is_some()
    }

    /// Records `f()` stamped `(at, host, conn)`; `f` runs only if the
    /// sink is on.
    #[inline]
    pub fn emit(&self, at: VirtualTime, conn: u32, f: impl FnOnce() -> Event) {
        if let Some(ring) = &self.ring {
            ring.borrow_mut().push(Stamped { at, host: self.host, conn, event: f() });
        }
    }

    /// Like [`EventSink::emit`] with an explicit host stamp — for shared
    /// infrastructure (the wire) that attributes events to the port it
    /// serves rather than to itself.
    #[inline]
    pub fn emit_for(&self, at: VirtualTime, host: u32, conn: u32, f: impl FnOnce() -> Event) {
        if let Some(ring) = &self.ring {
            ring.borrow_mut().push(Stamped { at, host, conn, event: f() });
        }
    }

    /// Snapshot of the stream so far, oldest first.
    pub fn events(&self) -> Vec<Stamped> {
        self.ring.as_ref().map_or_else(Vec::new, |r| r.borrow().events())
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.borrow().dropped())
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.as_ref().map_or(0, |r| r.borrow().len())
    }

    /// True if no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A per-connection metrics snapshot, unifying what `TcpStats` and the
/// harness `StationStats` each held half of.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConnMetrics {
    /// Smoothed RTT, microseconds (None before the first sample).
    pub srtt_us: Option<u64>,
    /// Current retransmission timeout, microseconds.
    pub rto_us: u64,
    /// Congestion window, bytes (0 when congestion control is off).
    pub cwnd: u32,
    /// Slow-start threshold, bytes.
    pub ssthresh: u32,
    /// Peer-advertised send window, bytes.
    pub snd_wnd: u32,
    /// Sent-but-unacknowledged bytes.
    pub bytes_in_flight: u32,
    /// Segments the fast path fully handled.
    pub fastpath_hits: u64,
    /// Segments that fell through to the full DAG.
    pub fastpath_misses: u64,
    /// Segments retransmitted.
    pub retransmits: u64,
    /// Fast retransmissions.
    pub fast_retransmits: u64,
    /// Fast-recovery episodes entered.
    pub recoveries: u64,
    /// Retransmission-timer fires that retransmitted.
    pub rto_fires: u64,
    /// Zero-window probes sent.
    pub probe_fires: u64,
    /// Segments transmitted.
    pub segments_sent: u64,
    /// Segments received and processed.
    pub segments_received: u64,
    /// Payload bytes transmitted (with retransmissions).
    pub bytes_sent: u64,
    /// Payload bytes delivered to the user.
    pub bytes_delivered: u64,
    /// Real host payload memcpys this connection caused (the
    /// `Event::BufCopy` count; the modeled copy charge is separate).
    pub buf_copies: u64,
    /// Real payload bytes memcpy'd.
    pub buf_copy_bytes: u64,
}

impl ConnMetrics {
    /// Share of received segments the fast path handled.
    pub fn fastpath_hit_ratio(&self) -> f64 {
        let total = self.fastpath_hits + self.fastpath_misses;
        if total == 0 {
            0.0
        } else {
            self.fastpath_hits as f64 / total as f64
        }
    }

    /// Real host payload copies per transmitted segment — the number the
    /// zero-copy refactor drives toward 1.0 (the single send-buffer
    /// read, with the checksum folded into the same pass).
    pub fn copies_per_packet(&self) -> f64 {
        if self.segments_sent == 0 {
            0.0
        } else {
            self.buf_copies as f64 / self.segments_sent as f64
        }
    }

    /// A deterministic JSON rendering of the snapshot.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"srtt_us\":{},\"rto_us\":{},\"cwnd\":{},\"ssthresh\":{},\"snd_wnd\":{},\
             \"bytes_in_flight\":{},\"fastpath_hits\":{},\"fastpath_misses\":{},\
             \"fastpath_hit_ratio\":{:.4},\"retransmits\":{},\"fast_retransmits\":{},\
             \"recoveries\":{},\"rto_fires\":{},\"probe_fires\":{},\"segments_sent\":{},\
             \"segments_received\":{},\"bytes_sent\":{},\"bytes_delivered\":{},\
             \"buf_copies\":{},\"buf_copy_bytes\":{},\"copies_per_packet\":{:.4}}}",
            self.srtt_us.map_or("null".to_string(), |v| v.to_string()),
            self.rto_us,
            self.cwnd,
            self.ssthresh,
            self.snd_wnd,
            self.bytes_in_flight,
            self.fastpath_hits,
            self.fastpath_misses,
            self.fastpath_hit_ratio(),
            self.retransmits,
            self.fast_retransmits,
            self.recoveries,
            self.rto_fires,
            self.probe_fires,
            self.segments_sent,
            self.segments_received,
            self.bytes_sent,
            self.bytes_delivered,
            self.buf_copies,
            self.buf_copy_bytes,
            self.copies_per_packet(),
        )
    }
}

// ----- exporters -----

/// One JSON object per line — greppable, diffable, streamable.
pub fn to_jsonl(events: &[Stamped]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

/// The Trace Event Format `chrome://tracing` / Perfetto opens: one
/// instant event per record, `pid` = host, `tid` = connection.
pub fn to_chrome_trace(events: &[Stamped]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{}}}",
            ev.event.name(),
            ev.at.as_micros(),
            ev.host,
            if ev.conn == NO_CONN { 0 } else { ev.conn + 1 },
            ev.event.args_json()
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Where two event streams part ways.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the first differing event.
    pub index: usize,
    /// The left stream's event there (None if it ended).
    pub left: Option<Stamped>,
    /// The right stream's event there (None if it ended).
    pub right: Option<Stamped>,
}

/// Aligns two streams and reports the first divergence, or `None` if
/// they are identical — the determinism claim, checkable.
pub fn first_divergence(a: &[Stamped], b: &[Stamped]) -> Option<Divergence> {
    for i in 0..a.len().max(b.len()) {
        let (l, r) = (a.get(i), b.get(i));
        if l != r {
            return Some(Divergence { index: i, left: l.cloned(), right: r.cloned() });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, conn: u32, event: Event) -> Stamped {
        Stamped { at: VirtualTime::from_micros(t), host: 1, conn, event }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(ev(i, 0, Event::Action { tag: "x" }));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let kept = ring.events();
        assert_eq!(kept[0].at, VirtualTime::from_micros(2), "oldest evicted first");
        assert_eq!(kept[2].at, VirtualTime::from_micros(4));
    }

    #[test]
    fn off_sink_records_nothing_and_never_runs_the_closure() {
        let sink = EventSink::off();
        let mut ran = false;
        sink.emit(VirtualTime::ZERO, 0, || {
            ran = true;
            Event::FrameCorrupt
        });
        assert!(!ran, "closure must not run when the sink is off");
        assert!(sink.events().is_empty());
        assert!(!sink.is_on());
    }

    #[test]
    fn clones_share_one_stream() {
        let sink = EventSink::recording(16);
        let a = sink.for_host(1);
        let b = sink.for_host(2);
        a.emit(VirtualTime::from_micros(1), 0, || Event::Action { tag: "one" });
        b.emit(VirtualTime::from_micros(2), NO_CONN, || Event::FrameCorrupt);
        let all = sink.events();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].host, 1);
        assert_eq!(all[1].host, 2);
        assert_eq!(all[1].conn, NO_CONN);
    }

    #[test]
    fn jsonl_is_deterministic_and_line_per_event() {
        let events = vec![
            ev(5, 0, Event::SegTx { seq: 100, ack: 0, len: 3, flags: flags::SYN, wnd: 4096 }),
            ev(9, NO_CONN, Event::FrameDrop { reason: "fault" }),
        ];
        let jsonl = to_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t\":5,\"host\":1,\"conn\":0,\"ev\":\"seg_tx\",\"args\":{\"seq\":100,\"ack\":0,\"len\":3,\"flags\":\"SYN\",\"wnd\":4096}}"
        );
        assert!(lines[1].contains("\"conn\":null"));
        assert_eq!(to_jsonl(&events), jsonl, "byte-identical on re-export");
    }

    #[test]
    fn chrome_trace_has_required_fields() {
        let events = vec![ev(7, 3, Event::TimerFire { timer: "Resend" })];
        let json = to_chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"timer_fire\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":7"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"tid\":4"));
    }

    #[test]
    fn flags_render() {
        assert_eq!(flags_to_string(flags::SYN | flags::ACK), "SYN+ACK");
        assert_eq!(flags_to_string(0), "none");
        assert_eq!(flags_to_string(flags::FIN | flags::ACK | flags::PSH), "FIN+PSH+ACK");
    }

    #[test]
    fn divergence_found_at_first_difference() {
        let a = vec![ev(1, 0, Event::Action { tag: "a" }), ev(2, 0, Event::Action { tag: "b" })];
        let mut b = a.clone();
        assert_eq!(first_divergence(&a, &b), None);
        b[1] = ev(2, 0, Event::Action { tag: "c" });
        let d = first_divergence(&a, &b).expect("divergence");
        assert_eq!(d.index, 1);
        assert_eq!(d.left.unwrap().event, Event::Action { tag: "b" });
        assert_eq!(d.right.unwrap().event, Event::Action { tag: "c" });
    }

    #[test]
    fn divergence_on_length_mismatch() {
        let a = vec![ev(1, 0, Event::Action { tag: "a" })];
        let b: Vec<Stamped> = Vec::new();
        let d = first_divergence(&a, &b).expect("length mismatch diverges");
        assert_eq!(d.index, 0);
        assert!(d.right.is_none());
    }

    #[test]
    fn metrics_ratio_and_json() {
        let m = ConnMetrics {
            srtt_us: Some(1500),
            fastpath_hits: 3,
            fastpath_misses: 1,
            ..ConnMetrics::default()
        };
        assert!((m.fastpath_hit_ratio() - 0.75).abs() < 1e-9);
        let json = m.to_json();
        assert!(json.contains("\"srtt_us\":1500"));
        assert!(json.contains("\"fastpath_hit_ratio\":0.7500"));
        let none = ConnMetrics::default();
        assert!(none.to_json().contains("\"srtt_us\":null"));
        assert_eq!(none.fastpath_hit_ratio(), 0.0);
    }
}
