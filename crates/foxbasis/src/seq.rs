//! TCP sequence-number arithmetic (modulo 2^32).
//!
//! The paper's SML extensions added `ubyte4` (unsigned 4-byte integers)
//! precisely because "the SML int type is inadequate in number of bits
//! ... in being signed, and in the operations it supports" — TCP sequence
//! numbers live in a 32-bit circular space where `a < b` means "a is at
//! most 2^31 - 1 behind b". [`Seq`] packages that space with the
//! comparisons RFC 793 uses throughout its SEGMENT-ARRIVES processing
//! (`SND.UNA < SEG.ACK =< SND.NXT` and friends).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A TCP sequence number.
///
/// ```
/// use foxbasis::seq::Seq;
/// // Ordering survives wraparound:
/// assert!(Seq(u32::MAX).lt(Seq(5)));
/// // RFC 793's ACK test, SND.UNA < SEG.ACK <= SND.NXT:
/// assert!(Seq(1500).in_open_closed(Seq(1000), Seq(2000)));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct Seq(pub u32);

impl Seq {
    /// The raw 32-bit value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Circular "strictly less than": true iff `self` precedes `other`
    /// by between 1 and 2^31 - 1 positions.
    pub fn lt(self, other: Seq) -> bool {
        (other.0.wrapping_sub(self.0) as i32) > 0
    }

    /// Circular "less than or equal".
    pub fn le(self, other: Seq) -> bool {
        self == other || self.lt(other)
    }

    /// Circular "strictly greater than".
    pub fn gt(self, other: Seq) -> bool {
        other.lt(self)
    }

    /// Circular "greater than or equal".
    pub fn ge(self, other: Seq) -> bool {
        other.le(self)
    }

    /// RFC 793's half-open acceptance test: `low < self <= high`
    /// (the form used for `SND.UNA < SEG.ACK =< SND.NXT`).
    pub fn in_open_closed(self, low: Seq, high: Seq) -> bool {
        low.lt(self) && self.le(high)
    }

    /// Closed-open window test: `low <= self < low + len`
    /// (the form used for `RCV.NXT =< SEG.SEQ < RCV.NXT + RCV.WND`).
    pub fn in_window(self, low: Seq, len: u32) -> bool {
        self.0.wrapping_sub(low.0) < len
    }

    /// The distance from `earlier` to `self`, assuming `earlier <= self`
    /// circularly. Returns a value in `[0, 2^32)`.
    pub fn since(self, earlier: Seq) -> u32 {
        self.0.wrapping_sub(earlier.0)
    }
}

impl Add<u32> for Seq {
    type Output = Seq;
    fn add(self, n: u32) -> Seq {
        Seq(self.0.wrapping_add(n))
    }
}

impl AddAssign<u32> for Seq {
    fn add_assign(&mut self, n: u32) {
        self.0 = self.0.wrapping_add(n);
    }
}

impl Sub<u32> for Seq {
    type Output = Seq;
    fn sub(self, n: u32) -> Seq {
        Seq(self.0.wrapping_sub(n))
    }
}

impl fmt::Debug for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Seq({})", self.0)
    }
}

impl fmt::Display for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_ordering() {
        assert!(Seq(1).lt(Seq(2)));
        assert!(!Seq(2).lt(Seq(1)));
        assert!(!Seq(5).lt(Seq(5)));
        assert!(Seq(5).le(Seq(5)));
        assert!(Seq(9).gt(Seq(3)));
        assert!(Seq(3).ge(Seq(3)));
    }

    #[test]
    fn ordering_across_wraparound() {
        let near_max = Seq(u32::MAX - 1);
        let wrapped = Seq(5);
        assert!(near_max.lt(wrapped));
        assert!(wrapped.gt(near_max));
        assert_eq!(wrapped.since(near_max), 7);
    }

    #[test]
    fn half_space_boundary() {
        // Exactly 2^31 apart: neither strictly precedes the other by the
        // RFC's definition; lt must be false both ways.
        let a = Seq(0);
        let b = Seq(1 << 31);
        assert!(!a.lt(b));
        assert!(!b.lt(a));
        // One short of half the space: ordered.
        let c = Seq((1 << 31) - 1);
        assert!(a.lt(c));
        assert!(!c.lt(a));
    }

    #[test]
    fn ack_acceptance_test() {
        // SND.UNA < SEG.ACK <= SND.NXT
        let una = Seq(1000);
        let nxt = Seq(2000);
        assert!(Seq(1001).in_open_closed(una, nxt));
        assert!(Seq(2000).in_open_closed(una, nxt));
        assert!(!Seq(1000).in_open_closed(una, nxt));
        assert!(!Seq(2001).in_open_closed(una, nxt));
    }

    #[test]
    fn window_test() {
        let rcv_nxt = Seq(u32::MAX - 2);
        assert!(rcv_nxt.in_window(rcv_nxt, 10));
        assert!(Seq(3).in_window(rcv_nxt, 10)); // wrapped into window
        assert!(!Seq(8).in_window(rcv_nxt, 10));
        assert!(!Seq(u32::MAX - 3).in_window(rcv_nxt, 10)); // just before
        assert!(!rcv_nxt.in_window(rcv_nxt, 0)); // zero window admits nothing
    }

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(Seq(u32::MAX) + 2, Seq(1));
        assert_eq!(Seq(1) - 3, Seq(u32::MAX - 1));
        let mut s = Seq(u32::MAX);
        s += 1;
        assert_eq!(s, Seq(0));
    }

    proptest! {
        #[test]
        fn lt_is_antisymmetric_off_boundary(a: u32, d in 1u32..(1 << 31)) {
            let x = Seq(a);
            let y = Seq(a.wrapping_add(d));
            prop_assert!(x.lt(y));
            prop_assert!(!y.lt(x));
        }

        #[test]
        fn since_inverts_add(a: u32, d: u32) {
            let x = Seq(a);
            prop_assert_eq!((x + d).since(x), d);
        }

        #[test]
        fn window_membership_matches_linear_model(base: u32, len in 0u32..65536, off: u32) {
            let s = Seq(base.wrapping_add(off));
            let member = s.in_window(Seq(base), len);
            prop_assert_eq!(member, off < len);
        }
    }
}
