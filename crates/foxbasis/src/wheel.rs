//! A hierarchical timer wheel driven by virtual time.
//!
//! The paper's Fig. 11 timer forks one coroutine per armed timer; with a
//! handful of connections that is charming, with hundreds it is O(log n)
//! heap traffic per arm and a dead sleeper left behind by every cancel.
//! This wheel gives every protocol stack in the workspace (foxtcp *and*
//! the x-kernel baseline, so the comparison stays apples-to-apples)
//! O(1) arm and cancel:
//!
//! * [`LEVELS`] levels of [`SLOTS`] slots each; a level-0 slot covers one
//!   tick of 2^[`TICK_BITS`] µs (≈ 1 ms), each level above covers
//!   [`SLOTS`]× the span below — six levels reach ~2.2 virtual years.
//! * Slot windows are **aligned**: an entry lives at the lowest level
//!   whose aligned window around the current time contains its deadline
//!   (equivalently, at level `highest_differing_bit / 6` of
//!   `deadline_tick XOR now_tick`). Alignment is what makes the wheel
//!   safe to mix with exact virtual time: every entry at level ℓ+1 is
//!   strictly later than everything still pending at level ℓ, so firing
//!   never has to look upward.
//! * Exact deadlines are kept in the entries; [`TimerWheel::advance`]
//!   returns everything due sorted by `(deadline, arm order)` — the same
//!   total order the scheduler's sleep heap imposed, which is what keeps
//!   same-seed traces byte-identical after the migration.
//! * Cancellation marks the entry and forgets it; the carcass is
//!   dropped when cascading or firing next touches its slot.

use crate::time::VirtualTime;
use std::collections::BTreeSet;

/// Bits of one level-0 tick: a slot spans 2^10 µs = 1.024 ms.
pub const TICK_BITS: u32 = 10;
/// log2 of the slots per level.
pub const SLOT_BITS: u32 = 6;
/// Slots per level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels.
pub const LEVELS: usize = 6;

/// Handle for a pending timer, returned by [`TimerWheel::arm`].
/// Ids are never reused; cancelling an already-fired id is a no-op.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TimerId(u64);

/// Operation counters (the `tables -- scale` experiment reports these).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Timers armed.
    pub arms: u64,
    /// Timers cancelled while still pending.
    pub cancels: u64,
    /// Timers fired (returned from [`TimerWheel::advance`]).
    pub fires: u64,
    /// Entries moved between levels by cascading.
    pub cascades: u64,
}

struct Entry<T> {
    /// Exact deadline in µs.
    deadline: u64,
    /// Arm order; doubles as the [`TimerId`].
    seq: u64,
    payload: T,
}

/// One fired timer.
#[derive(Debug)]
pub struct Fired<T> {
    /// The id [`TimerWheel::arm`] returned.
    pub id: TimerId,
    /// The exact deadline it was armed for (≤ the advance target).
    pub deadline: VirtualTime,
    /// The payload it was armed with.
    pub payload: T,
}

/// The wheel. `T` is the per-timer payload — protocol stacks use
/// `(connection id, timer kind)`.
pub struct TimerWheel<T> {
    /// `LEVELS * SLOTS` buckets, level-major.
    slots: Vec<Vec<Entry<T>>>,
    /// Entries due within the current tick but after `now`.
    near: Vec<Entry<T>>,
    /// Entries armed with a deadline already ≤ `now`: due at the very
    /// next `advance`, whatever its target.
    ripe: Vec<Entry<T>>,
    /// Current time in µs.
    now: u64,
    next_seq: u64,
    /// Ids armed and neither fired nor cancelled.
    pending: BTreeSet<u64>,
    /// Ids cancelled whose entries still sit in a slot.
    cancelled: BTreeSet<u64>,
    stats: WheelStats,
}

impl<T> TimerWheel<T> {
    /// An empty wheel whose clock starts at `start`.
    pub fn new(start: VirtualTime) -> TimerWheel<T> {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            near: Vec::new(),
            ripe: Vec::new(),
            now: start.as_micros(),
            next_seq: 0,
            pending: BTreeSet::new(),
            cancelled: BTreeSet::new(),
            stats: WheelStats::default(),
        }
    }

    /// The wheel's current time.
    pub fn now(&self) -> VirtualTime {
        VirtualTime::from_micros(self.now)
    }

    /// Pending (armed, not yet fired or cancelled) timers.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// No pending timers?
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Operation counters.
    pub fn stats(&self) -> WheelStats {
        self.stats
    }

    /// Arms a timer for `deadline`. A deadline at or before the current
    /// time is clamped to the current time and fires on the next
    /// [`TimerWheel::advance`] — the scheduler this replaces could never
    /// sleep into the past, so "already due" means "due now, after
    /// everything armed earlier". O(1).
    pub fn arm(&mut self, deadline: VirtualTime, payload: T) -> TimerId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.arms += 1;
        self.pending.insert(seq);
        let deadline = deadline.as_micros().max(self.now);
        self.place(Entry { deadline, seq, payload });
        TimerId(seq)
    }

    /// Cancels a pending timer; returns whether it was still pending.
    /// O(1) — the entry is dropped lazily.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            self.stats.cancels += 1;
            true
        } else {
            false
        }
    }

    /// The earliest pending deadline, if any. O(pending) — diagnostics
    /// and tests only; the hot path is `advance`.
    pub fn next_deadline(&self) -> Option<VirtualTime> {
        self.slots
            .iter()
            .chain(std::iter::once(&self.near))
            .chain(std::iter::once(&self.ripe))
            .flatten()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .map(|e| e.deadline)
            .min()
            .map(VirtualTime::from_micros)
    }

    /// Moves the clock to `to` (must not go backwards) and returns every
    /// timer with `deadline <= to`, sorted by `(deadline, arm order)`.
    /// Calling with `to == now()` still drains timers armed at or before
    /// the current instant.
    pub fn advance(&mut self, to: VirtualTime) -> Vec<Fired<T>> {
        let to_us = to.as_micros();
        assert!(to_us >= self.now, "timer wheel clock cannot run backwards");
        let old_t = self.now >> TICK_BITS;
        self.now = to_us;
        let new_t = to_us >> TICK_BITS;

        let mut due: Vec<Entry<T>> = std::mem::take(&mut self.ripe);
        let mut replace: Vec<Entry<T>> = Vec::new();

        if new_t == old_t {
            // Same tick: only `near` can have come due.
            let mut keep = Vec::new();
            for e in self.near.drain(..) {
                if e.deadline <= to_us {
                    due.push(e);
                } else {
                    keep.push(e);
                }
            }
            self.near = keep;
        } else {
            // The old tick is fully behind us.
            due.append(&mut self.near);
            // Drain every slot the cursor passed, level by level. A span
            // of ≥ SLOTS at some level drains the whole level; levels
            // whose cursor did not move are untouched (and neither are
            // any above them).
            for lvl in 0..LEVELS {
                let shift = SLOT_BITS * lvl as u32;
                let (old_l, new_l) = (old_t >> shift, new_t >> shift);
                if old_l == new_l {
                    break;
                }
                let span = (new_l - old_l).min(SLOTS as u64);
                for k in 1..=span {
                    let slot = ((old_l + k) % SLOTS as u64) as usize;
                    for e in self.slots[lvl * SLOTS + slot].drain(..) {
                        if e.deadline <= to_us {
                            due.push(e);
                        } else {
                            if lvl > 0 {
                                self.stats.cascades += 1;
                            }
                            replace.push(e);
                        }
                    }
                }
            }
        }

        // Re-file survivors relative to the new now (cascade).
        for e in replace {
            self.place(e);
        }

        due.retain(|e| {
            if self.cancelled.remove(&e.seq) {
                false
            } else {
                self.pending.remove(&e.seq);
                true
            }
        });
        due.sort_by_key(|e| (e.deadline, e.seq));
        self.stats.fires += due.len() as u64;
        due.into_iter()
            .map(|e| Fired {
                id: TimerId(e.seq),
                deadline: VirtualTime::from_micros(e.deadline),
                payload: e.payload,
            })
            .collect()
    }

    /// Files an entry at the lowest level whose aligned window (around
    /// the current time) contains its deadline.
    fn place(&mut self, e: Entry<T>) {
        if e.deadline <= self.now {
            self.ripe.push(e);
            return;
        }
        let now_t = self.now >> TICK_BITS;
        let d_t = e.deadline >> TICK_BITS;
        let diff = d_t ^ now_t;
        if diff == 0 {
            self.near.push(e);
            return;
        }
        let lvl = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        let slot = if lvl >= LEVELS {
            // Beyond the top level's window (> ~2 years out): park one
            // slot ahead of the top cursor. An overflow deadline is
            // always past the next top-level cursor move, so the entry
            // is re-examined (and re-filed closer) there — never early,
            // never missed.
            let top = now_t >> (SLOT_BITS * (LEVELS as u32 - 1));
            ((top + 1) % SLOTS as u64) as usize + (LEVELS - 1) * SLOTS
        } else {
            ((d_t >> (SLOT_BITS * lvl as u32)) % SLOTS as u64) as usize + lvl * SLOTS
        };
        self.slots[slot].push(e);
    }
}

impl<T> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TimerWheel(now={}µs, pending={}, stats={:?})", self.now, self.pending.len(), self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VirtualDuration;
    use std::collections::BTreeMap;

    fn t(us: u64) -> VirtualTime {
        VirtualTime::from_micros(us)
    }

    #[test]
    fn fires_in_deadline_then_arm_order() {
        let mut w = TimerWheel::new(VirtualTime::ZERO);
        let a = w.arm(t(5_000), "a");
        let b = w.arm(t(3_000), "b");
        let c = w.arm(t(5_000), "c");
        let fired = w.advance(t(10_000));
        let order: Vec<&str> = fired.iter().map(|f| f.payload).collect();
        assert_eq!(order, ["b", "a", "c"], "deadline asc, ties by arm order");
        assert_eq!(fired[0].deadline, t(3_000));
        assert_eq!(fired[1].id, a);
        let _ = (b, c);
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_prevents_fire_and_reports_liveness() {
        let mut w = TimerWheel::new(VirtualTime::ZERO);
        let a = w.arm(t(2_000), 1);
        let b = w.arm(t(2_000), 2);
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "second cancel is a no-op");
        let fired = w.advance(t(5_000));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].payload, 2);
        assert!(!w.cancel(b), "fired timers cannot be cancelled");
        assert_eq!(w.stats().cancels, 1);
        assert_eq!(w.stats().fires, 1);
    }

    #[test]
    fn deadline_at_or_before_now_fires_on_next_advance() {
        let mut w = TimerWheel::new(t(1_000_000));
        w.arm(t(1_000_000), "now");
        w.arm(t(5), "past");
        // Zero-width advance still drains ripe timers; the past deadline
        // was clamped to now, so both tie and fire in arm order.
        let fired = w.advance(t(1_000_000));
        let order: Vec<&str> = fired.iter().map(|f| f.payload).collect();
        assert_eq!(order, ["now", "past"]);
        assert_eq!(fired[1].deadline, t(1_000_000), "past deadline clamped");
    }

    #[test]
    fn sub_tick_precision_within_one_slot() {
        let mut w = TimerWheel::new(VirtualTime::ZERO);
        w.arm(t(700), "late");
        w.arm(t(300), "early");
        assert!(w.advance(t(100)).is_empty());
        let f1 = w.advance(t(300));
        assert_eq!(f1.len(), 1);
        assert_eq!(f1[0].payload, "early");
        let f2 = w.advance(t(900));
        assert_eq!(f2.len(), 1);
        assert_eq!(f2[0].payload, "late");
    }

    #[test]
    fn long_jumps_cascade_correctly() {
        let mut w = TimerWheel::new(VirtualTime::ZERO);
        // One timer per decade of µs: exercises every level.
        let mut expect = Vec::new();
        for p in 0..10u32 {
            let us = 10u64.pow(p);
            w.arm(t(us), us);
            expect.push(us);
        }
        expect.sort();
        // Advance in stages so high-level entries are drained early and
        // cascade down, then jump past all of them.
        let mut got = Vec::new();
        for stop in [900_000_000, 999_999_000, 20_000_000_000] {
            got.extend(w.advance(t(stop)).iter().map(|f| f.payload));
        }
        assert_eq!(got, expect);
        assert!(w.stats().cascades > 0, "multi-level deadlines must cascade");
    }

    #[test]
    fn next_deadline_tracks_minimum() {
        let mut w = TimerWheel::new(VirtualTime::ZERO);
        assert_eq!(w.next_deadline(), None);
        w.arm(t(500_000), ());
        let near = w.arm(t(2_000), ());
        assert_eq!(w.next_deadline(), Some(t(2_000)));
        w.cancel(near);
        assert_eq!(w.next_deadline(), Some(t(500_000)));
        w.advance(t(1_000_000));
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn far_future_overflow_parks_and_still_fires() {
        let mut w = TimerWheel::new(VirtualTime::ZERO);
        // Beyond the six-level horizon (~2.2 virtual years).
        let far = 1u64 << 50;
        w.arm(t(far), "far");
        assert!(w.advance(t(far - 1)).is_empty());
        let fired = w.advance(t(far));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].payload, "far");
    }

    /// The reference model the proptest below (and the satellite task)
    /// pins the wheel against: a `BTreeMap<(time, id)>`, fired in key
    /// order — exactly the scheduler sleep-heap semantics the wheel
    /// replaces.
    #[derive(Default)]
    struct NaiveTimers {
        map: BTreeMap<(u64, u64), u32>,
        by_id: BTreeMap<u64, (u64, u64)>,
        now: u64,
        next: u64,
    }

    impl NaiveTimers {
        fn arm(&mut self, deadline: u64, payload: u32) -> u64 {
            let id = self.next;
            self.next += 1;
            self.map.insert((deadline, id), payload);
            self.by_id.insert(id, (deadline, id));
            id
        }

        fn cancel(&mut self, id: u64) -> bool {
            match self.by_id.remove(&id) {
                Some(key) => self.map.remove(&key).is_some(),
                None => false,
            }
        }

        fn advance(&mut self, to: u64) -> Vec<(u64, u32)> {
            self.now = self.now.max(to);
            let mut fired = Vec::new();
            while let Some((&(d, id), &p)) = self.map.iter().next() {
                if d > self.now {
                    break;
                }
                self.map.remove(&(d, id));
                self.by_id.remove(&id);
                fired.push((d, p));
            }
            fired
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(256))]

        /// Arbitrary arm/cancel/advance sequences fire the same timers
        /// in the same order as the naive ordered-map model.
        #[test]
        fn wheel_matches_btreemap_reference(ops in proptest::collection::vec((0u8..8, 0u64..5_000_000), 1..120)) {
            let mut wheel = TimerWheel::new(VirtualTime::ZERO);
            let mut model = NaiveTimers::default();
            let mut ids: Vec<(TimerId, u64)> = Vec::new();
            let mut now = 0u64;
            let mut payload = 0u32;
            for (op, arg) in ops {
                match op {
                    // Arm (weighted: most ops arm).
                    0..=3 => {
                        // Mix of near, far, and already-due deadlines.
                        let deadline = match op {
                            0 => now + arg % 2_048,              // sub-slot
                            1 => now + arg % 400_000,            // a few slots
                            2 => now + arg,                      // anywhere
                            _ => now.saturating_sub(arg % 1_000), // already due
                        };
                        payload += 1;
                        let wid = wheel.arm(t(deadline), payload);
                        let mid = model.arm(deadline.max(now), payload);
                        ids.push((wid, mid));
                    }
                    // Cancel a random previously armed timer.
                    4 | 5 => {
                        if !ids.is_empty() {
                            let (wid, mid) = ids[arg as usize % ids.len()];
                            let a = wheel.cancel(wid);
                            let b = model.cancel(mid);
                            proptest::prop_assert_eq!(a, b, "cancel liveness must agree");
                        }
                    }
                    // Advance (sometimes by zero).
                    _ => {
                        now += if op == 6 { arg % 3_000 } else { arg % 900_000 };
                        let fired: Vec<u32> = wheel.advance(t(now)).into_iter().map(|f| f.payload).collect();
                        let expect: Vec<u32> = model.advance(now).into_iter().map(|(_, p)| p).collect();
                        proptest::prop_assert_eq!(fired, expect, "same timers, same order");
                    }
                }
            }
            // Drain everything left and compare the tail too.
            now += 100_000_000_000;
            let fired: Vec<u32> = wheel.advance(t(now)).into_iter().map(|f| f.payload).collect();
            let expect: Vec<u32> = model.advance(now).into_iter().map(|(_, p)| p).collect();
            proptest::prop_assert_eq!(fired, expect);
            proptest::prop_assert!(wheel.is_empty());
        }
    }

    #[test]
    fn stats_count_operations() {
        let mut w = TimerWheel::new(VirtualTime::ZERO);
        let a = w.arm(t(1_000), ());
        w.arm(t(2_000), ());
        w.cancel(a);
        w.advance(t(5_000));
        let s = w.stats();
        assert_eq!(s.arms, 2);
        assert_eq!(s.cancels, 1);
        assert_eq!(s.fires, 1);
        let _ = VirtualDuration::ZERO;
    }
}
