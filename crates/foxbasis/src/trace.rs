//! Debug print and trace hooks.
//!
//! Every functor in the paper takes `val do_prints: bool` and
//! `val do_traces: bool` (Fig. 4). [`Trace`] is the Rust equivalent: a
//! cheap, cloneable handle that collects messages into a shared log (so
//! tests can assert on them) and optionally echoes to stderr. The closure
//! taken by [`Trace::trace`] is only evaluated when tracing is on, the
//! same staging trick the paper uses higher-order functions for.
//!
//! The log is collected only while at least one channel is enabled, and
//! it is bounded: once `capacity` lines are held the oldest is evicted
//! and counted, so a long-running stack with tracing on cannot grow
//! memory without limit. A fully silent sink stores nothing at all.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// Default bound on retained log lines.
pub const DEFAULT_LOG_CAPACITY: usize = 4096;

struct Log {
    lines: VecDeque<String>,
    capacity: usize,
    dropped: u64,
}

impl Log {
    fn push(&mut self, line: String) {
        if self.lines.len() >= self.capacity {
            self.lines.pop_front();
            self.dropped += 1;
        }
        self.lines.push_back(line);
    }
}

/// A named print/trace sink.
#[derive(Clone)]
pub struct Trace {
    name: &'static str,
    do_prints: bool,
    do_traces: bool,
    log: Rc<RefCell<Log>>,
}

impl Trace {
    /// Creates a sink for module `name`. `do_prints` echoes messages to
    /// stderr as they happen; `do_traces` enables the (lazier, more
    /// verbose) trace channel. Messages are logged only while at least
    /// one channel is on, and at most [`DEFAULT_LOG_CAPACITY`] lines are
    /// retained.
    pub fn new(name: &'static str, do_prints: bool, do_traces: bool) -> Self {
        Trace::with_capacity(name, do_prints, do_traces, DEFAULT_LOG_CAPACITY)
    }

    /// Like [`Trace::new`] with an explicit bound on retained lines.
    pub fn with_capacity(name: &'static str, do_prints: bool, do_traces: bool, capacity: usize) -> Self {
        Trace {
            name,
            do_prints,
            do_traces,
            log: Rc::new(RefCell::new(Log { lines: VecDeque::new(), capacity: capacity.max(1), dropped: 0 })),
        }
    }

    /// A silent sink: no channel enabled, nothing ever logged.
    pub fn silent(name: &'static str) -> Self {
        Trace::new(name, false, false)
    }

    /// True if the verbose trace channel is on.
    pub fn tracing(&self) -> bool {
        self.do_traces
    }

    /// True if any channel is enabled (i.e. messages are collected).
    pub fn enabled(&self) -> bool {
        self.do_prints || self.do_traces
    }

    /// Records `msg` on the print channel. A fully silent sink discards
    /// the message without formatting or storing it.
    pub fn print(&self, msg: &str) {
        if !self.enabled() {
            return;
        }
        let line = format!("{}: {}", self.name, msg);
        if self.do_prints {
            eprintln!("{line}");
        }
        self.log.borrow_mut().push(line);
    }

    /// Records a trace message; `f` runs only if tracing is enabled.
    pub fn trace(&self, f: impl FnOnce() -> String) {
        if self.do_traces {
            let line = format!("{}: {}", self.name, f());
            if self.do_prints {
                eprintln!("{line}");
            }
            self.log.borrow_mut().push(line);
        }
    }

    /// Everything retained so far (across all clones of this sink),
    /// oldest first.
    pub fn messages(&self) -> Vec<String> {
        self.log.borrow().lines.iter().cloned().collect()
    }

    /// Lines evicted because the log was full.
    pub fn dropped(&self) -> u64 {
        self.log.borrow().dropped
    }

    /// Maximum lines retained.
    pub fn capacity(&self) -> usize {
        self.log.borrow().capacity
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.log.borrow_mut().lines.clear();
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Trace({}, prints={}, traces={}, {} messages)",
            self.name,
            self.do_prints,
            self.do_traces,
            self.log.borrow().lines.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_sink_stays_empty() {
        let t = Trace::silent("tcp");
        t.print("hello");
        t.trace(|| "detail".into());
        assert!(t.messages().is_empty(), "a silent sink must not retain anything");
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn print_is_logged_when_a_channel_is_on() {
        let t = Trace::new("tcp", false, true);
        t.print("hello");
        assert_eq!(t.messages(), vec!["tcp: hello"]);
    }

    #[test]
    fn trace_is_lazy_and_gated() {
        let off = Trace::new("m", false, false);
        let mut evaluated = false;
        off.trace(|| {
            evaluated = true;
            "x".into()
        });
        assert!(!evaluated);
        assert!(off.messages().is_empty());

        let on = Trace::new("m", false, true);
        on.trace(|| "deep detail".into());
        assert_eq!(on.messages(), vec!["m: deep detail"]);
    }

    #[test]
    fn bounded_log_caps_memory_and_counts_drops() {
        let t = Trace::with_capacity("m", false, true, 3);
        for i in 0..10 {
            t.trace(|| format!("line {i}"));
        }
        assert_eq!(t.messages().len(), 3, "log must stay at its bound");
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.messages(), vec!["m: line 7", "m: line 8", "m: line 9"]);
        assert_eq!(t.capacity(), 3);
    }

    #[test]
    fn clones_share_the_log() {
        let a = Trace::new("shared", false, true);
        let b = a.clone();
        a.print("one");
        b.print("two");
        assert_eq!(a.messages().len(), 2);
        b.clear();
        assert!(a.messages().is_empty());
    }
}
