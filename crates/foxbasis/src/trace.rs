//! Debug print and trace hooks.
//!
//! Every functor in the paper takes `val do_prints: bool` and
//! `val do_traces: bool` (Fig. 4). [`Trace`] is the Rust equivalent: a
//! cheap, cloneable handle that collects messages into a shared log (so
//! tests can assert on them) and optionally echoes to stderr. The closure
//! taken by [`Trace::trace`] is only evaluated when tracing is on, the
//! same staging trick the paper uses higher-order functions for.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A named print/trace sink.
#[derive(Clone)]
pub struct Trace {
    name: &'static str,
    do_prints: bool,
    do_traces: bool,
    log: Rc<RefCell<Vec<String>>>,
}

impl Trace {
    /// Creates a sink for module `name`. `do_prints` echoes messages to
    /// stderr as they happen; `do_traces` enables the (lazier, more
    /// verbose) trace channel.
    pub fn new(name: &'static str, do_prints: bool, do_traces: bool) -> Self {
        Trace { name, do_prints, do_traces, log: Rc::new(RefCell::new(Vec::new())) }
    }

    /// A silent sink.
    pub fn silent(name: &'static str) -> Self {
        Trace::new(name, false, false)
    }

    /// True if the verbose trace channel is on.
    pub fn tracing(&self) -> bool {
        self.do_traces
    }

    /// Records `msg` on the print channel.
    pub fn print(&self, msg: &str) {
        let line = format!("{}: {}", self.name, msg);
        if self.do_prints {
            eprintln!("{line}");
        }
        self.log.borrow_mut().push(line);
    }

    /// Records a trace message; `f` runs only if tracing is enabled.
    pub fn trace(&self, f: impl FnOnce() -> String) {
        if self.do_traces {
            let line = format!("{}: {}", self.name, f());
            if self.do_prints {
                eprintln!("{line}");
            }
            self.log.borrow_mut().push(line);
        }
    }

    /// Everything recorded so far (across all clones of this sink).
    pub fn messages(&self) -> Vec<String> {
        self.log.borrow().clone()
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.log.borrow_mut().clear();
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Trace({}, prints={}, traces={}, {} messages)",
            self.name,
            self.do_prints,
            self.do_traces,
            self.log.borrow().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_is_always_logged() {
        let t = Trace::new("tcp", false, false);
        t.print("hello");
        assert_eq!(t.messages(), vec!["tcp: hello"]);
    }

    #[test]
    fn trace_is_lazy_and_gated() {
        let off = Trace::new("m", false, false);
        let mut evaluated = false;
        off.trace(|| {
            evaluated = true;
            "x".into()
        });
        assert!(!evaluated);
        assert!(off.messages().is_empty());

        let on = Trace::new("m", false, true);
        on.trace(|| "deep detail".into());
        assert_eq!(on.messages(), vec!["m: deep detail"]);
    }

    #[test]
    fn clones_share_the_log() {
        let a = Trace::silent("shared");
        let b = a.clone();
        a.print("one");
        b.print("two");
        assert_eq!(a.messages().len(), 2);
        b.clear();
        assert!(a.messages().is_empty());
    }
}
