//! Virtual time for the deterministic simulation substrate.
//!
//! The paper's determinism claim — "once the actions have been placed on
//! the queue the behavior of TCP is completely deterministic and
//! testable" — only holds at whole-system scale if the clock itself is
//! deterministic. All of FoxNet-RS therefore runs on a discrete virtual
//! clock with microsecond resolution; real wall-clock time never enters
//! protocol code.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in microseconds since simulation
/// start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(u64);

/// A span of simulation time, in microseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualDuration(u64);

impl VirtualTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Builds an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        VirtualTime(us)
    }

    /// Builds an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        VirtualTime(ms * 1_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The time elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, saturating at the maximum representable instant.
    pub fn saturating_add(self, d: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.min(other.0))
    }
}

impl VirtualDuration {
    /// Zero-length duration.
    pub const ZERO: VirtualDuration = VirtualDuration(0);

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        VirtualDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VirtualDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        VirtualDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            VirtualDuration(0)
        } else {
            VirtualDuration((s * 1e6).round() as u64)
        }
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `self - other`, saturating at zero.
    pub fn saturating_sub(self, other: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(other.0))
    }

    /// `self * n`, saturating.
    pub fn saturating_mul(self, n: u64) -> VirtualDuration {
        VirtualDuration(self.0.saturating_mul(n))
    }

    /// The larger of two durations.
    pub fn max(self, other: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.min(other.0))
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, d: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0 + d.0)
    }
}

impl AddAssign<VirtualDuration> for VirtualTime {
    fn add_assign(&mut self, d: VirtualDuration) {
        self.0 += d.0;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = VirtualDuration;
    fn sub(self, earlier: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.checked_sub(earlier.0).expect("virtual time subtraction underflow"))
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    fn add(self, o: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0 + o.0)
    }
}

impl AddAssign for VirtualDuration {
    fn add_assign(&mut self, o: VirtualDuration) {
        self.0 += o.0;
    }
}

impl Sub for VirtualDuration {
    type Output = VirtualDuration;
    fn sub(self, o: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.checked_sub(o.0).expect("virtual duration subtraction underflow"))
    }
}

impl SubAssign for VirtualDuration {
    fn sub_assign(&mut self, o: VirtualDuration) {
        *self = *self - o;
    }
}

impl Mul<u64> for VirtualDuration {
    type Output = VirtualDuration;
    fn mul(self, n: u64) -> VirtualDuration {
        VirtualDuration(self.0 * n)
    }
}

impl Div<u64> for VirtualDuration {
    type Output = VirtualDuration;
    fn div(self, n: u64) -> VirtualDuration {
        VirtualDuration(self.0 / n)
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = VirtualTime::from_millis(3);
        assert_eq!(t.as_micros(), 3_000);
        assert_eq!(t.as_millis(), 3);
        let d = VirtualDuration::from_secs(2);
        assert_eq!(d.as_micros(), 2_000_000);
        assert_eq!(d.as_millis(), 2_000);
    }

    #[test]
    fn arithmetic() {
        let t = VirtualTime::from_micros(100);
        let d = VirtualDuration::from_micros(50);
        assert_eq!((t + d).as_micros(), 150);
        assert_eq!(((t + d) - t).as_micros(), 50);
        assert_eq!((d + d).as_micros(), 100);
        assert_eq!((d * 3).as_micros(), 150);
        assert_eq!((d / 2).as_micros(), 25);
        assert_eq!((d - VirtualDuration::from_micros(20)).as_micros(), 30);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_subtraction_underflow_panics() {
        let _ = VirtualTime::from_micros(1) - VirtualTime::from_micros(2);
    }

    #[test]
    fn saturating_operations() {
        let early = VirtualTime::from_micros(10);
        let late = VirtualTime::from_micros(20);
        assert_eq!(early.saturating_since(late), VirtualDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_micros(), 10);
        let d = VirtualDuration::from_micros(5);
        assert_eq!(d.saturating_sub(VirtualDuration::from_micros(9)), VirtualDuration::ZERO);
        assert_eq!(VirtualDuration::from_micros(u64::MAX).saturating_mul(2).as_micros(), u64::MAX);
    }

    #[test]
    fn min_max() {
        let a = VirtualTime::from_micros(1);
        let b = VirtualTime::from_micros(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = VirtualDuration::from_micros(1);
        let y = VirtualDuration::from_micros(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(VirtualDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(VirtualDuration::from_secs_f64(-1.0), VirtualDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", VirtualDuration::from_micros(7)), "7us");
        assert_eq!(format!("{}", VirtualDuration::from_micros(7_500)), "7.500ms");
        assert_eq!(format!("{}", VirtualDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", VirtualTime::from_micros(1_500_000)), "1.500000s");
    }
}
