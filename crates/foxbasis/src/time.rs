//! Virtual time for the deterministic simulation substrate.
//!
//! The paper's determinism claim — "once the actions have been placed on
//! the queue the behavior of TCP is completely deterministic and
//! testable" — only holds at whole-system scale if the clock itself is
//! deterministic. All of FoxNet-RS therefore runs on a discrete virtual
//! clock with microsecond resolution; real wall-clock time never enters
//! protocol code.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in microseconds since simulation
/// start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(u64);

/// A span of simulation time, in microseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualDuration(u64);

impl VirtualTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Builds an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        VirtualTime(us)
    }

    /// Builds an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        VirtualTime(ms * 1_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The time elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, saturating at the maximum representable instant.
    pub fn saturating_add(self, d: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.min(other.0))
    }
}

impl VirtualDuration {
    /// Zero-length duration.
    pub const ZERO: VirtualDuration = VirtualDuration(0);

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        VirtualDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VirtualDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        VirtualDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            VirtualDuration(0)
        } else {
            VirtualDuration((s * 1e6).round() as u64)
        }
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `self - other`, saturating at zero.
    pub fn saturating_sub(self, other: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(other.0))
    }

    /// `self * n`, saturating.
    pub fn saturating_mul(self, n: u64) -> VirtualDuration {
        VirtualDuration(self.0.saturating_mul(n))
    }

    /// The larger of two durations.
    pub fn max(self, other: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.min(other.0))
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

/// A span of *cost-model* time, in nanoseconds.
///
/// The simulation clock itself stays at microsecond resolution — every
/// timestamp that can reach a trace, a timer wheel, or a wire event is a
/// [`VirtualTime`]. `NanoDuration` exists for the cost-accounting
/// substrate underneath: the 1994 DECstation constants are hundreds of
/// microseconds, but a modern-profile per-packet cost is a few hundred
/// *nanoseconds*, unrepresentable in a µs duration. Hosts accumulate
/// charges in `NanoDuration` and truncate to whole microseconds only at
/// the clock boundary; since every 1994-profile constant is a whole
/// number of microseconds, that truncation is exact for the paper's
/// tables.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NanoDuration(u64);

impl NanoDuration {
    /// Zero-length duration.
    pub const ZERO: NanoDuration = NanoDuration(0);

    /// Builds a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        NanoDuration(ns)
    }

    /// Builds a duration from microseconds (exact).
    pub const fn from_micros(us: u64) -> Self {
        NanoDuration(us * 1_000)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds in this duration (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Rounds down to a whole multiple of `quantum` (a zero quantum is
    /// treated as 1 ns, i.e. no quantization). Cost models use this to
    /// reproduce the paper-era arithmetic exactly: the 1994 presets
    /// quantize computed per-KB charges to whole microseconds, matching
    /// the original µs integer division bit-for-bit.
    pub const fn quantize_down(self, quantum: NanoDuration) -> NanoDuration {
        let q = if quantum.0 == 0 { 1 } else { quantum.0 };
        NanoDuration(self.0 / q * q)
    }

    /// The larger of two durations.
    pub fn max(self, other: NanoDuration) -> NanoDuration {
        NanoDuration(self.0.max(other.0))
    }

    /// `self - other`, saturating at zero.
    pub fn saturating_sub(self, other: NanoDuration) -> NanoDuration {
        NanoDuration(self.0.saturating_sub(other.0))
    }

    /// Truncates to the microsecond clock grid (exact whenever the
    /// duration is a whole number of microseconds, as all 1994-profile
    /// charges are).
    pub const fn to_virtual_floor(self) -> VirtualDuration {
        VirtualDuration(self.0 / 1_000)
    }
}

impl From<VirtualDuration> for NanoDuration {
    fn from(d: VirtualDuration) -> NanoDuration {
        NanoDuration(d.0 * 1_000)
    }
}

impl Add for NanoDuration {
    type Output = NanoDuration;
    fn add(self, o: NanoDuration) -> NanoDuration {
        NanoDuration(self.0 + o.0)
    }
}

impl AddAssign for NanoDuration {
    fn add_assign(&mut self, o: NanoDuration) {
        self.0 += o.0;
    }
}

impl Sub for NanoDuration {
    type Output = NanoDuration;
    fn sub(self, o: NanoDuration) -> NanoDuration {
        NanoDuration(self.0.checked_sub(o.0).expect("nano duration subtraction underflow"))
    }
}

impl Mul<u64> for NanoDuration {
    type Output = NanoDuration;
    fn mul(self, n: u64) -> NanoDuration {
        NanoDuration(self.0 * n)
    }
}

impl Div<u64> for NanoDuration {
    type Output = NanoDuration;
    fn div(self, n: u64) -> NanoDuration {
        NanoDuration(self.0 / n)
    }
}

impl fmt::Debug for NanoDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for NanoDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, d: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0 + d.0)
    }
}

impl AddAssign<VirtualDuration> for VirtualTime {
    fn add_assign(&mut self, d: VirtualDuration) {
        self.0 += d.0;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = VirtualDuration;
    fn sub(self, earlier: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.checked_sub(earlier.0).expect("virtual time subtraction underflow"))
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    fn add(self, o: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0 + o.0)
    }
}

impl AddAssign for VirtualDuration {
    fn add_assign(&mut self, o: VirtualDuration) {
        self.0 += o.0;
    }
}

impl Sub for VirtualDuration {
    type Output = VirtualDuration;
    fn sub(self, o: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.checked_sub(o.0).expect("virtual duration subtraction underflow"))
    }
}

impl SubAssign for VirtualDuration {
    fn sub_assign(&mut self, o: VirtualDuration) {
        *self = *self - o;
    }
}

impl Mul<u64> for VirtualDuration {
    type Output = VirtualDuration;
    fn mul(self, n: u64) -> VirtualDuration {
        VirtualDuration(self.0 * n)
    }
}

impl Div<u64> for VirtualDuration {
    type Output = VirtualDuration;
    fn div(self, n: u64) -> VirtualDuration {
        VirtualDuration(self.0 / n)
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = VirtualTime::from_millis(3);
        assert_eq!(t.as_micros(), 3_000);
        assert_eq!(t.as_millis(), 3);
        let d = VirtualDuration::from_secs(2);
        assert_eq!(d.as_micros(), 2_000_000);
        assert_eq!(d.as_millis(), 2_000);
    }

    #[test]
    fn arithmetic() {
        let t = VirtualTime::from_micros(100);
        let d = VirtualDuration::from_micros(50);
        assert_eq!((t + d).as_micros(), 150);
        assert_eq!(((t + d) - t).as_micros(), 50);
        assert_eq!((d + d).as_micros(), 100);
        assert_eq!((d * 3).as_micros(), 150);
        assert_eq!((d / 2).as_micros(), 25);
        assert_eq!((d - VirtualDuration::from_micros(20)).as_micros(), 30);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_subtraction_underflow_panics() {
        let _ = VirtualTime::from_micros(1) - VirtualTime::from_micros(2);
    }

    #[test]
    fn saturating_operations() {
        let early = VirtualTime::from_micros(10);
        let late = VirtualTime::from_micros(20);
        assert_eq!(early.saturating_since(late), VirtualDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_micros(), 10);
        let d = VirtualDuration::from_micros(5);
        assert_eq!(d.saturating_sub(VirtualDuration::from_micros(9)), VirtualDuration::ZERO);
        assert_eq!(VirtualDuration::from_micros(u64::MAX).saturating_mul(2).as_micros(), u64::MAX);
    }

    #[test]
    fn min_max() {
        let a = VirtualTime::from_micros(1);
        let b = VirtualTime::from_micros(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = VirtualDuration::from_micros(1);
        let y = VirtualDuration::from_micros(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(VirtualDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(VirtualDuration::from_secs_f64(-1.0), VirtualDuration::ZERO);
    }

    #[test]
    fn nano_duration_basics() {
        let d = NanoDuration::from_micros(3);
        assert_eq!(d.as_nanos(), 3_000);
        assert_eq!(d.as_micros(), 3);
        assert_eq!(NanoDuration::from(VirtualDuration::from_micros(7)).as_nanos(), 7_000);
        assert_eq!((d + NanoDuration::from_nanos(5)).as_nanos(), 3_005);
        assert_eq!((d * 2).as_nanos(), 6_000);
        assert_eq!((d / 2).as_nanos(), 1_500);
        assert_eq!((d - NanoDuration::from_nanos(1)).as_nanos(), 2_999);
        assert!(NanoDuration::ZERO.is_zero());
        assert_eq!(NanoDuration::from_nanos(2_500).to_virtual_floor().as_micros(), 2);
    }

    #[test]
    fn nano_duration_quantize_down() {
        let us = NanoDuration::from_micros(1);
        // 29_296 ns quantized to the µs grid is 29 µs — exactly the
        // paper-era integer division result.
        assert_eq!(NanoDuration::from_nanos(29_296).quantize_down(us).as_nanos(), 29_000);
        // A 1 ns quantum (or zero) leaves values untouched.
        assert_eq!(NanoDuration::from_nanos(777).quantize_down(NanoDuration::from_nanos(1)).as_nanos(), 777);
        assert_eq!(NanoDuration::from_nanos(777).quantize_down(NanoDuration::ZERO).as_nanos(), 777);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", VirtualDuration::from_micros(7)), "7us");
        assert_eq!(format!("{}", VirtualDuration::from_micros(7_500)), "7.500ms");
        assert_eq!(format!("{}", VirtualDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", VirtualTime::from_micros(1_500_000)), "1.500000s");
    }
}
