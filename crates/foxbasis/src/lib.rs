//! # Fox Basis
//!
//! The utility substrate of FoxNet-RS, mirroring the Fox Project's
//! `FOX_BASIS` structure that every protocol functor in the paper takes as
//! a parameter ("`structure B: FOX_BASIS (* our utilities *)`", Fig. 4 of
//! Biagioni, *A Structured TCP in Standard ML*, SIGCOMM '94).
//!
//! It contains:
//!
//! * [`buf`] — [`buf::PacketBuf`], the refcounted headroom buffer a
//!   packet lives in from TCP payload to wire and back (one real copy
//!   per direction, with the checksum folded into that pass);
//! * [`fifo`] — the FIFO queue (`structure Q: FIFO` in Fig. 6), used for
//!   the per-connection `to_do` action queue and the out-of-order queue;
//! * [`deq`] — the double-ended queue (`structure D: DEQ` in Fig. 6),
//!   used for the queue of unsent outgoing packets;
//! * [`ring`] — a byte ring buffer used for socket send/receive buffers;
//! * [`wordarray`] — safe byte arrays with 1/2/4-byte big-endian access,
//!   the Rust rendering of the Fox extensions' in-lined byte arrays and
//!   `Byte2`/`Byte4` operations;
//! * [`mod@checksum`] — the Internet checksum, including a line-for-line port
//!   of the paper's Fig. 10 `word_check` loop plus the slower
//!   byte-oriented algorithm the x-kernel used, and incremental update;
//! * [`copy`] — the copy routines whose cost the paper reports
//!   (300 µs/KB in SML vs 61 µs/KB for `bcopy` on a DECstation 5000/125);
//! * [`seq`] — TCP sequence-number arithmetic (modulo 2^32);
//! * [`time`] — the virtual-time types used by the deterministic
//!   simulation substrate;
//! * [`profile`] — the profiling-counter infrastructure reproducing the
//!   paper's memory-mapped hardware counters (15 µs per update), which
//!   generates Table 2;
//! * [`trace`] — the `do_prints` / `do_traces` debug hooks every functor
//!   in the paper accepts;
//! * [`obs`] — the typed, bounded, zero-cost-when-off event layer
//!   (state transitions, actions, timers, segments, wire faults, GC
//!   pauses) with JSONL / chrome://tracing exporters and a stream
//!   differ that turns the determinism claim into a debugging tool;
//! * [`wheel`] — a hierarchical timer wheel (O(1) arm/cancel, virtual-time
//!   driven, cascading slots) shared by both TCP stacks, replacing the
//!   one-coroutine-per-timer Fig. 11 scheme at scale.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod buf;
pub mod checksum;
pub mod copy;
pub mod deq;
pub mod fifo;
pub mod obs;
pub mod profile;
pub mod ring;
pub mod seq;
pub mod time;
pub mod trace;
pub mod wheel;
pub mod wordarray;

pub use buf::PacketBuf;
pub use checksum::{checksum, ones_complement_sum, ChecksumAccum};
pub use deq::Deq;
pub use fifo::Fifo;
pub use obs::{ConnMetrics, Event, EventRing, EventSink, Stamped, NO_CONN};
pub use profile::{Account, Profiler};
pub use ring::RingBuffer;
pub use seq::Seq;
pub use time::{NanoDuration, VirtualDuration, VirtualTime};
pub use trace::Trace;
pub use wheel::{TimerId, TimerWheel, WheelStats};
pub use wordarray::WordArray;
