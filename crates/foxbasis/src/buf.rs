//! `PacketBuf` — the one buffer a packet lives in from TCP payload to
//! wire and back.
//!
//! The paper's §5 cost accounting (Table 2) shows the data-touching
//! operations — copy (300 µs/KB) and checksum (343 µs/KB) — dominating
//! the avoidable per-byte cost. The original stack, like ours before
//! this module, re-materialized an owned byte vector at every layer
//! boundary, so the *host* paid O(layers) memcpys per segment even
//! though the *modeled* 1994 cost is charged once. `PacketBuf` is the
//! layered-stack buffer-passing discipline: a reference-counted storage
//! block with reserved headroom in front of the payload, so each layer
//! prepends its header in place and the wire delivers the same block by
//! refcount bump.
//!
//! Layout of the shared storage (`H` = headroom, `T` = tailroom):
//!
//! ```text
//!   0        start                    end          storage.len()
//!   |  H ... |  <---- this view ----> | ... T      (+ reserved cap)
//! ```
//!
//! A `PacketBuf` is a *view* `[start, end)` of the shared storage.
//! `clone` is a refcount bump. [`PacketBuf::prepend_header`] writes into
//! the headroom **in place** when that is provably safe, and falls back
//! to reallocating (a real, counted copy) when it is not.
//!
//! ## Safety discipline (no `unsafe`, no aliased mutation)
//!
//! Storage sits behind a `RefCell`; every live view registers its
//! `[start, end)` bounds with the shared storage. A byte below `start`
//! is only visible to a view whose own start is smaller, so:
//!
//! * `prepend_header` may write `[start - n, start)` in place iff **no
//!   other live view has a smaller start** (equal starts are fine — they
//!   cannot see below themselves either);
//! * `append` may write `[end, end + n)` in place iff no other live view
//!   has a larger end.
//!
//! This makes the retransmission pattern work without copies: the resend
//! queue holds the payload view `[p, e)`; at (re)transmission time the
//! descending clone starts at the same `p`, so TCP/IP/Ethernet headers
//! prepend in place below `p` while the queued payload bytes are never
//! touched. If an older view of the same storage is still alive further
//! down (e.g. a frame still sitting in a simulated receive queue), the
//! prepend *detects* it and reallocates — correctness first, the copy is
//! merely counted.
//!
//! ## Copy accounting
//!
//! Every real payload memcpy this module performs is recorded in a
//! thread-local counter ([`copy_stats`]); callers that sit next to an
//! [`crate::obs::EventSink`] additionally emit `Event::BufCopy`. Header
//! and trailer writes (≤ ~60 bytes per layer, plain stores into
//! reserved room) are not copies and are not counted. The *virtual*
//! cost model is entirely unaffected: `charge_copy`/`charge_checksum`
//! keep charging the paper's per-KB constants at the same points, so
//! Tables 1–2 reproduce byte-for-byte while the host's real memcpy
//! traffic drops.

use crate::checksum::word_check;
use std::cell::{Cell, Ref, RefCell};
use std::fmt;
use std::rc::Rc;

/// Default headroom reserved in front of a payload: enough for
/// TCP (≤60) is not needed below IP in this stack — the deepest real
/// stack here is TCP(20) + IPv4(20) + Ethernet(14) = 54 bytes.
pub const DEFAULT_HEADROOM: usize = 64;
/// Default tailroom reserved behind a payload: Ethernet minimum-payload
/// padding (≤46) plus the 4-byte FCS.
pub const DEFAULT_TAILROOM: usize = 64;

// ----- thread-local copy accounting -----

// These counters are observational only: the virtual cost model charges
// copies independently (`charge_copy`), so nothing trace-affecting ever
// reads them — a shard seeing its own counts is exactly the intended
// per-worker accounting.
// foxlint::allow(shard_global): diagnostic copy counters; the cost model charges independently, so traces never read these
thread_local! {
    static COPIES: Cell<u64> = const { Cell::new(0) };
    static COPY_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Cumulative real-memcpy statistics for this thread.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CopyStats {
    /// Number of distinct payload copies performed.
    pub copies: u64,
    /// Total payload bytes memcpy'd.
    pub bytes: u64,
}

/// The thread's cumulative [`CopyStats`] since the last
/// [`reset_copy_stats`].
pub fn copy_stats() -> CopyStats {
    CopyStats { copies: COPIES.with(|c| c.get()), bytes: COPY_BYTES.with(|c| c.get()) }
}

/// Zeroes the thread's copy counters.
pub fn reset_copy_stats() {
    COPIES.with(|c| c.set(0));
    COPY_BYTES.with(|c| c.set(0));
}

/// A point-in-time marker for measuring copies across a region of code.
#[derive(Copy, Clone, Debug)]
pub struct CopyMark(CopyStats);

/// Takes a marker; [`CopyMark::delta`] reports copies since.
pub fn copy_mark() -> CopyMark {
    CopyMark(copy_stats())
}

impl CopyMark {
    /// Copies performed since this mark was taken.
    pub fn delta(&self) -> CopyStats {
        let now = copy_stats();
        CopyStats { copies: now.copies - self.0.copies, bytes: now.bytes - self.0.bytes }
    }
}

fn note_copy(bytes: usize) {
    if bytes == 0 {
        return;
    }
    COPIES.with(|c| c.set(c.get() + 1));
    COPY_BYTES.with(|c| c.set(c.get() + bytes as u64));
}

// ----- the buffer -----

struct Inner {
    storage: RefCell<Vec<u8>>,
    /// `[start, end)` of every live view of this storage, one entry per
    /// `PacketBuf`. Small (a handful of views), scanned linearly.
    views: RefCell<Vec<(usize, usize)>>,
}

impl Inner {
    fn with_storage(storage: Vec<u8>, start: usize, end: usize) -> Rc<Inner> {
        Rc::new(Inner { storage: RefCell::new(storage), views: RefCell::new(vec![(start, end)]) })
    }

    /// True if a live view *other than* one occurrence of `[start, end)`
    /// starts below `limit`.
    fn other_view_starts_below(&self, start: usize, end: usize, limit: usize) -> bool {
        let views = self.views.borrow();
        let mut self_seen = false;
        views.iter().any(|&(s, e)| {
            if !self_seen && s == start && e == end {
                self_seen = true;
                return false;
            }
            s < limit
        })
    }

    /// True if a live view other than one occurrence of `[start, end)`
    /// ends above `limit`.
    fn other_view_ends_above(&self, start: usize, end: usize, limit: usize) -> bool {
        let views = self.views.borrow();
        let mut self_seen = false;
        views.iter().any(|&(s, e)| {
            if !self_seen && s == start && e == end {
                self_seen = true;
                return false;
            }
            e > limit
        })
    }
}

/// A cheaply-cloneable view of a shared packet storage block with
/// reserved headroom. See the module docs for the discipline.
pub struct PacketBuf {
    inner: Rc<Inner>,
    start: usize,
    end: usize,
    /// Memoized ones-complement sum of `self[start..end]` — set by the
    /// combined copy+checksum constructors, read by the TCP encoder so
    /// the payload is summed exactly once (the paper's Fig. 10 combined
    /// pass).
    sum: Cell<Option<u16>>,
}

impl PacketBuf {
    // ----- constructors -----

    /// An empty buffer with the default head- and tailroom.
    pub fn new() -> PacketBuf {
        PacketBuf::with_room(DEFAULT_HEADROOM, DEFAULT_TAILROOM)
    }

    /// An empty buffer with `headroom` bytes reserved in front and
    /// capacity for `tailroom` bytes behind.
    pub fn with_room(headroom: usize, tailroom: usize) -> PacketBuf {
        let mut storage = Vec::with_capacity(headroom + tailroom);
        storage.resize(headroom, 0);
        let inner = Inner::with_storage(storage, headroom, headroom);
        PacketBuf { inner, start: headroom, end: headroom, sum: Cell::new(Some(0)) }
    }

    /// Adopts `v` as the payload with **no** copy and no headroom.
    /// Prepending to the result will take the reallocation fallback;
    /// use [`PacketBuf::with_headroom`] for buffers that descend a
    /// protocol stack.
    pub fn from_vec(v: Vec<u8>) -> PacketBuf {
        let end = v.len();
        let inner = Inner::with_storage(v, 0, end);
        PacketBuf { inner, start: 0, end, sum: Cell::new(None) }
    }

    /// Copies `data` into fresh storage behind `headroom` reserved
    /// bytes (one counted copy).
    pub fn with_headroom(headroom: usize, data: &[u8]) -> PacketBuf {
        PacketBuf::build(headroom, data.len(), |dst| dst.copy_from_slice(data))
    }

    /// Builds a payload of `len` bytes behind `headroom` reserved bytes,
    /// letting `fill` write the bytes directly into the storage (one
    /// counted copy — the filler is expected to be a real data source
    /// such as a ring-buffer read).
    pub fn build(headroom: usize, len: usize, fill: impl FnOnce(&mut [u8])) -> PacketBuf {
        let mut storage = Vec::with_capacity(headroom + len + DEFAULT_TAILROOM);
        storage.resize(headroom + len, 0);
        fill(&mut storage[headroom..]);
        note_copy(len);
        let inner = Inner::with_storage(storage, headroom, headroom + len);
        PacketBuf { inner, start: headroom, end: headroom + len, sum: Cell::new(None) }
    }

    /// Like [`PacketBuf::build`], but the filler also returns the
    /// ones-complement sum of the bytes it wrote, computed *during* the
    /// copy — the paper's Fig. 10 combined copy+checksum pass. The sum
    /// is memoized so the TCP encoder never re-reads the payload.
    pub fn build_summed(headroom: usize, len: usize, fill: impl FnOnce(&mut [u8]) -> u16) -> PacketBuf {
        let mut storage = Vec::with_capacity(headroom + len + DEFAULT_TAILROOM);
        storage.resize(headroom + len, 0);
        let sum = fill(&mut storage[headroom..]);
        note_copy(len);
        let inner = Inner::with_storage(storage, headroom, headroom + len);
        PacketBuf { inner, start: headroom, end: headroom + len, sum: Cell::new(Some(sum)) }
    }

    // ----- observers -----

    /// Bytes in this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Headroom available in front of this view.
    pub fn headroom(&self) -> usize {
        self.start
    }

    /// The view's bytes. The returned guard borrows the shared storage:
    /// drop it before calling any mutating operation on a view of the
    /// same buffer.
    pub fn bytes(&self) -> Ref<'_, [u8]> {
        Ref::map(self.inner.storage.borrow(), |s| &s[self.start..self.end])
    }

    /// An owned copy of the view's bytes (counted).
    pub fn to_vec(&self) -> Vec<u8> {
        note_copy(self.len());
        self.bytes().to_vec()
    }

    /// The ones-complement sum (RFC 1071, not inverted) of the view's
    /// bytes, memoized per view.
    pub fn ones_sum(&self) -> u16 {
        if let Some(s) = self.sum.get() {
            return s;
        }
        let s = word_check(&self.bytes());
        self.sum.set(Some(s));
        s
    }

    /// True if this view is the only live view of its storage.
    pub fn is_unique(&self) -> bool {
        Rc::strong_count(&self.inner) == 1 && self.inner.views.borrow().len() == 1
    }

    // ----- view surgery (zero-copy) -----

    fn set_bounds(&mut self, start: usize, end: usize) {
        debug_assert!(start <= end);
        {
            let mut views = self.inner.views.borrow_mut();
            if let Some(i) = views.iter().position(|&v| v == (self.start, self.end)) {
                views[i] = (start, end);
            }
        }
        self.start = start;
        self.end = end;
        self.sum.set(None);
    }

    /// A sub-view `[from, to)` of this view (refcount bump, no copy).
    ///
    /// # Panics
    /// Panics if `from > to` or `to > self.len()`.
    pub fn slice(&self, from: usize, to: usize) -> PacketBuf {
        assert!(from <= to && to <= self.len(), "slice {from}..{to} of {}", self.len());
        let b = self.clone();
        let mut b = b;
        b.set_bounds(self.start + from, self.start + to);
        b
    }

    /// Drops the first `n` bytes from the view (no copy).
    ///
    /// # Panics
    /// Panics if `n > self.len()`.
    pub fn trim_front(&mut self, n: usize) {
        assert!(n <= self.len());
        self.set_bounds(self.start + n, self.end);
    }

    /// Drops the last `n` bytes from the view (no copy).
    ///
    /// # Panics
    /// Panics if `n > self.len()`.
    pub fn trim_back(&mut self, n: usize) {
        assert!(n <= self.len());
        self.set_bounds(self.start, self.end - n);
    }

    /// Shortens the view to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.set_bounds(self.start, self.start + len);
        }
    }

    // ----- mutation -----

    /// Prepends `header` in front of the view — in place into the
    /// headroom when safe, otherwise by reallocating (fallback).
    /// Returns the number of payload bytes really memcpy'd: 0 for the
    /// in-place path, `self.len()` for the fallback.
    pub fn prepend_header(&mut self, header: &[u8]) -> usize {
        let n = header.len();
        let in_place =
            self.start >= n && !self.inner.other_view_starts_below(self.start, self.end, self.start);
        if in_place {
            {
                let mut storage = self.inner.storage.borrow_mut();
                storage[self.start - n..self.start].copy_from_slice(header);
            }
            self.set_bounds(self.start - n, self.end);
            0
        } else {
            let copied = self.len();
            let mut storage = Vec::with_capacity(DEFAULT_HEADROOM + n + copied + DEFAULT_TAILROOM);
            storage.resize(DEFAULT_HEADROOM, 0);
            storage.extend_from_slice(header);
            storage.extend_from_slice(&self.bytes());
            note_copy(copied);
            let start = DEFAULT_HEADROOM;
            let end = start + n + copied;
            *self = PacketBuf {
                inner: Inner::with_storage(storage, start, end),
                start,
                end,
                sum: Cell::new(None),
            };
            copied
        }
    }

    /// Appends `data` behind the view — in place when safe, otherwise by
    /// reallocating. Returns the payload bytes really memcpy'd (0 for
    /// the in-place path).
    pub fn append(&mut self, data: &[u8]) -> usize {
        let n = data.len();
        let in_place = !self.inner.other_view_ends_above(self.start, self.end, self.end);
        if in_place {
            {
                let mut storage = self.inner.storage.borrow_mut();
                if storage.len() < self.end + n {
                    storage.resize(self.end + n, 0);
                }
                storage[self.end..self.end + n].copy_from_slice(data);
            }
            self.set_bounds(self.start, self.end + n);
            0
        } else {
            let copied = self.len();
            let mut storage = Vec::with_capacity(DEFAULT_HEADROOM + copied + n + DEFAULT_TAILROOM);
            storage.resize(DEFAULT_HEADROOM, 0);
            storage.extend_from_slice(&self.bytes());
            storage.extend_from_slice(data);
            note_copy(copied);
            let start = DEFAULT_HEADROOM;
            let end = start + copied + n;
            *self = PacketBuf {
                inner: Inner::with_storage(storage, start, end),
                start,
                end,
                sum: Cell::new(None),
            };
            copied
        }
    }

    /// Appends `n` zero bytes (Ethernet minimum-payload padding).
    /// Returns the payload bytes really memcpy'd.
    pub fn append_zeros(&mut self, n: usize) -> usize {
        // Padding is at most MIN_PAYLOAD bytes; a stack scratch avoids
        // allocating for it.
        let zeros = [0u8; 64];
        let mut remaining = n;
        let mut copied = 0;
        while remaining > 0 {
            let take = remaining.min(zeros.len());
            copied += self.append(&zeros[..take]);
            remaining -= take;
        }
        copied
    }

    /// A deep copy into fresh, uniquely-owned storage (counted) — used
    /// by fault injection before corrupting bytes in place.
    pub fn clone_owned(&self) -> PacketBuf {
        note_copy(self.len());
        let data = self.bytes().to_vec();
        let end = data.len();
        PacketBuf { inner: Inner::with_storage(data, 0, end), start: 0, end, sum: Cell::new(None) }
    }

    /// Mutable access to the view's bytes, only when this is the sole
    /// live view of its storage (e.g. right after [`clone_owned`]).
    /// Invalidates the memoized sum.
    ///
    /// [`clone_owned`]: PacketBuf::clone_owned
    pub fn bytes_mut(&mut self) -> Option<std::cell::RefMut<'_, [u8]>> {
        if !self.is_unique() {
            return None;
        }
        self.sum.set(None);
        Some(std::cell::RefMut::map(self.inner.storage.borrow_mut(), |s| &mut s[self.start..self.end]))
    }
}

impl Default for PacketBuf {
    fn default() -> Self {
        PacketBuf::new()
    }
}

impl Clone for PacketBuf {
    fn clone(&self) -> Self {
        self.inner.views.borrow_mut().push((self.start, self.end));
        PacketBuf {
            inner: Rc::clone(&self.inner),
            start: self.start,
            end: self.end,
            sum: Cell::new(self.sum.get()),
        }
    }
}

impl Drop for PacketBuf {
    fn drop(&mut self) {
        let mut views = self.inner.views.borrow_mut();
        if let Some(i) = views.iter().position(|&v| v == (self.start, self.end)) {
            views.swap_remove(i);
        }
    }
}

impl fmt::Debug for PacketBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PacketBuf({} bytes @{}..{})", self.len(), self.start, self.end)
    }
}

impl From<Vec<u8>> for PacketBuf {
    /// Adopts the vector without copying (and without headroom).
    fn from(v: Vec<u8>) -> PacketBuf {
        PacketBuf::from_vec(v)
    }
}

impl From<&[u8]> for PacketBuf {
    /// Copies the slice behind default headroom (counted).
    fn from(v: &[u8]) -> PacketBuf {
        PacketBuf::with_headroom(DEFAULT_HEADROOM, v)
    }
}

impl<const N: usize> From<&[u8; N]> for PacketBuf {
    fn from(v: &[u8; N]) -> PacketBuf {
        PacketBuf::with_headroom(DEFAULT_HEADROOM, v)
    }
}

impl PartialEq for PacketBuf {
    fn eq(&self, other: &PacketBuf) -> bool {
        // Same storage and bounds is common (clones); compare bytes
        // otherwise.
        (Rc::ptr_eq(&self.inner, &other.inner) && self.start == other.start && self.end == other.end)
            || *self.bytes() == *other.bytes()
    }
}

impl Eq for PacketBuf {}

impl PartialEq<[u8]> for PacketBuf {
    fn eq(&self, other: &[u8]) -> bool {
        *self.bytes() == *other
    }
}

impl PartialEq<&[u8]> for PacketBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        *self.bytes() == **other
    }
}

impl PartialEq<Vec<u8>> for PacketBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.bytes() == other[..]
    }
}

impl PartialEq<PacketBuf> for Vec<u8> {
    fn eq(&self, other: &PacketBuf) -> bool {
        self[..] == *other.bytes()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for PacketBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        *self.bytes() == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for PacketBuf {
    fn eq(&self, other: &&[u8; N]) -> bool {
        *self.bytes() == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn with_headroom_and_prepend_in_place() {
        reset_copy_stats();
        let mut b = PacketBuf::with_headroom(32, b"payload");
        assert_eq!(copy_stats().bytes, 7);
        assert_eq!(b.len(), 7);
        assert_eq!(b.headroom(), 32);
        let copied = b.prepend_header(b"HDR:");
        assert_eq!(copied, 0, "headroom prepend must be in place");
        assert_eq!(b, b"HDR:payload");
        assert_eq!(copy_stats().bytes, 7, "no payload bytes moved");
    }

    #[test]
    fn prepend_without_headroom_falls_back() {
        reset_copy_stats();
        let mut b = PacketBuf::from_vec(b"data".to_vec());
        assert_eq!(copy_stats().bytes, 0, "from_vec adopts");
        let copied = b.prepend_header(b"H");
        assert_eq!(copied, 4, "payload re-homed");
        assert_eq!(b, b"Hdata");
        assert!(b.headroom() >= DEFAULT_HEADROOM - 1);
    }

    #[test]
    fn clone_is_refcount_bump_and_contended_prepend_copies() {
        reset_copy_stats();
        let b = PacketBuf::with_headroom(32, b"shared-bytes");
        let base = copy_stats().bytes;
        let kept = b.clone();
        assert_eq!(copy_stats().bytes, base, "clone copies nothing");
        // A clone starting at the same offset may still prepend in
        // place: it cannot corrupt a view that starts at or above it.
        let mut descend = b.clone();
        assert_eq!(descend.prepend_header(b"IP"), 0);
        // But now `descend` starts *below* `b` and `kept`; a sibling
        // prepend at the higher start is blocked by the lower view.
        let mut late = kept.clone();
        assert_eq!(late.prepend_header(b"XX"), b.len(), "contended prepend falls back");
        assert_eq!(late, b"XXshared-bytes");
        assert_eq!(descend, b"IPshared-bytes");
        assert_eq!(b, b"shared-bytes");
    }

    #[test]
    fn retransmit_pattern_prepends_in_place_twice() {
        // Queue holds the payload view; each (re)transmission clones it
        // and prepends headers. Once the first frame dies, the second
        // descent reuses the same headroom with zero copies.
        let queued = PacketBuf::with_headroom(54, b"segment-payload");
        reset_copy_stats();
        for _ in 0..2 {
            let mut descend = queued.clone();
            assert_eq!(descend.prepend_header(&[0u8; 20]), 0); // TCP
            assert_eq!(descend.prepend_header(&[1u8; 20]), 0); // IP
            assert_eq!(descend.prepend_header(&[2u8; 14]), 0); // Eth
            assert_eq!(descend.append(&[3u8; 4]), 0); // FCS
            assert_eq!(descend.len(), 15 + 54 + 4);
            drop(descend);
        }
        assert_eq!(copy_stats().bytes, 0, "pure retransmission memcpys nothing");
        assert_eq!(queued, b"segment-payload");
    }

    #[test]
    fn append_contention_falls_back() {
        let b = PacketBuf::with_headroom(8, b"abc");
        let longer = {
            let mut l = b.clone();
            l.append(b"tail");
            l
        };
        // `b` ends below `longer` now; appending through `b` must not
        // clobber `longer`'s tail.
        let mut b2 = b.clone();
        let copied = b2.append(b"XYZ");
        assert_eq!(copied, 3);
        assert_eq!(b2, b"abcXYZ");
        assert_eq!(longer, b"abctail");
    }

    #[test]
    fn slice_and_trim_are_zero_copy() {
        reset_copy_stats();
        let b = PacketBuf::with_headroom(16, b"hello world");
        let base = copy_stats().bytes;
        let mut s = b.slice(6, 11);
        assert_eq!(s, b"world");
        s.trim_front(1);
        assert_eq!(s, b"orld");
        s.trim_back(1);
        assert_eq!(s, b"orl");
        s.truncate(2);
        assert_eq!(s, b"or");
        assert_eq!(copy_stats().bytes, base);
    }

    #[test]
    fn ones_sum_memoized_and_correct() {
        let data = b"The ones-complement sum of this payload";
        let b = PacketBuf::with_headroom(8, data);
        assert_eq!(b.ones_sum(), word_check(data));
        // A view change invalidates the memo.
        let s = b.slice(0, 4);
        assert_eq!(s.ones_sum(), word_check(&data[..4]));
    }

    #[test]
    fn build_summed_folds_checksum_into_the_copy() {
        let data: Vec<u8> = (0..=255u8).collect();
        let b = PacketBuf::build_summed(32, data.len(), |dst| {
            dst.copy_from_slice(&data);
            word_check(dst)
        });
        assert_eq!(b.ones_sum(), word_check(&data));
        assert_eq!(b, data);
    }

    #[test]
    fn clone_owned_permits_corruption() {
        let b = PacketBuf::with_headroom(8, b"pristine");
        let mut owned = b.clone_owned();
        assert!(owned.bytes_mut().is_some());
        owned.bytes_mut().unwrap()[0] ^= 0x20;
        assert_eq!(owned, b"Pristine");
        assert_eq!(b, b"pristine");
        // Shared buffers refuse mutable access.
        let c = b.clone();
        let mut shared = b.clone();
        assert!(shared.bytes_mut().is_none());
        drop(c);
    }

    #[test]
    fn equality_across_representations() {
        let a = PacketBuf::with_headroom(4, b"same");
        let b = PacketBuf::from_vec(b"same".to_vec());
        assert_eq!(a, b);
        assert_eq!(a, b"same");
        assert_eq!(a, b"same".to_vec());
        assert_ne!(a, PacketBuf::from_vec(b"diff".to_vec()));
    }

    // ----- satellite: proptest against a Vec<u8> reference model -----

    proptest! {
        #[test]
        fn matches_vec_reference_model(
            initial in proptest::collection::vec(any::<u8>(), 0..64),
            headroom in 0usize..8, // small: exercises the exhaustion fallback
            ops in proptest::collection::vec(
                (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..24), 0usize..32, 0usize..32),
                0..24,
            ),
        ) {
            let mut buf = PacketBuf::with_headroom(headroom, &initial);
            let mut model = initial.clone();
            // Held clones force the contended fallback paths; each must
            // keep seeing its own frozen bytes.
            let mut aside: Vec<(PacketBuf, Vec<u8>)> = Vec::new();
            for (sel, data, a, b) in ops {
                match sel % 6 {
                    0 => {
                        buf.prepend_header(&data);
                        let mut m = data;
                        m.extend_from_slice(&model);
                        model = m;
                    }
                    1 => {
                        buf.append(&data);
                        model.extend_from_slice(&data);
                    }
                    2 => {
                        let n = a.min(model.len());
                        buf.trim_front(n);
                        model.drain(..n);
                    }
                    3 => {
                        let n = a.min(model.len());
                        buf.trim_back(n);
                        model.truncate(model.len() - n);
                    }
                    4 => {
                        let a = a.min(model.len());
                        let b = b.min(model.len()).max(a);
                        buf = buf.slice(a, b);
                        model = model[a..b].to_vec();
                    }
                    _ => {
                        aside.push((buf.clone(), model.clone()));
                    }
                }
                prop_assert_eq!(&buf, &model);
                prop_assert_eq!(buf.ones_sum(), word_check(&model));
                for (b, m) in &aside {
                    prop_assert_eq!(b, m, "held clone bytes changed under mutation");
                }
            }
        }
    }
}
