//! The double-ended queue of the Fox Basis (`structure D: DEQ` in the
//! paper's Fig. 6).
//!
//! The structured TCP keeps the connection's queue of not-yet-sent
//! outgoing packets (`queued: Send_Packet.T D.T ref`) in a deque: new
//! data is appended at the back by the Send module, segments are taken
//! from the front for transmission, and a segment that could not be sent
//! (window closed mid-segmentation) is pushed back on the front.

use std::collections::VecDeque;
use std::fmt;

/// A double-ended queue.
#[derive(Clone)]
pub struct Deq<T> {
    items: VecDeque<T>,
}

impl<T> Deq<T> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        Deq { items: VecDeque::new() }
    }

    /// Appends at the back.
    pub fn push_back(&mut self, item: T) {
        self.items.push_back(item);
    }

    /// Prepends at the front.
    pub fn push_front(&mut self, item: T) {
        self.items.push_front(item);
    }

    /// Removes from the front.
    pub fn pop_front(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Removes from the back.
    pub fn pop_back(&mut self) -> Option<T> {
        self.items.pop_back()
    }

    /// References the front element.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Mutably references the front element.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// References the back element.
    pub fn back(&self) -> Option<&T> {
        self.items.back()
    }

    /// Mutably references the back element.
    pub fn back_mut(&mut self) -> Option<&mut T> {
        self.items.back_mut()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates front-to-back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Iterates front-to-back with mutable access.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.items.iter_mut()
    }

    /// Removes every element for which `keep` returns false, preserving
    /// order.
    pub fn retain(&mut self, keep: impl FnMut(&T) -> bool) {
        self.items.retain(keep);
    }
}

impl<T> Default for Deq<T> {
    fn default() -> Self {
        Deq::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for Deq<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.items.iter()).finish()
    }
}

impl<T> FromIterator<T> for Deq<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Deq { items: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_ends() {
        let mut d = Deq::new();
        d.push_back(2);
        d.push_front(1);
        d.push_back(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.front(), Some(&1));
        assert_eq!(d.back(), Some(&3));
        assert_eq!(d.pop_front(), Some(1));
        assert_eq!(d.pop_back(), Some(3));
        assert_eq!(d.pop_front(), Some(2));
        assert!(d.is_empty());
    }

    #[test]
    fn front_mut_allows_in_place_edit() {
        let mut d: Deq<i32> = [10, 20].into_iter().collect();
        *d.front_mut().unwrap() += 1;
        *d.back_mut().unwrap() += 2;
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![11, 22]);
    }

    #[test]
    fn unsent_packet_requeue_pattern() {
        // The Send-module pattern: pop a segment, discover the window is
        // closed, push it back on the front for the next opportunity.
        let mut d: Deq<&str> = ["seg1", "seg2"].into_iter().collect();
        let seg = d.pop_front().unwrap();
        d.push_front(seg);
        assert_eq!(d.pop_front(), Some("seg1"));
        assert_eq!(d.pop_front(), Some("seg2"));
    }

    #[test]
    fn retain_and_clear() {
        let mut d: Deq<i32> = (0..6).collect();
        d.retain(|x| x % 3 != 0);
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![1, 2, 4, 5]);
        d.clear();
        assert!(d.is_empty());
    }
}
