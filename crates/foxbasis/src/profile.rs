//! Profiling counters — the measurement substrate behind the paper's
//! Table 2.
//!
//! The paper could not use SML/NJ's sampling profiler under Mach 3.0, so
//! it "installed hardware devices containing free-running counters that
//! can be mapped into the address space of the SML task". One call each
//! to the start/stop functions cost about **15 µs** altogether, and the
//! "counters (est.)" row of Table 2 is the estimated perturbation
//! (updates × 15 µs).
//!
//! [`Profiler`] reproduces this: protocol components charge elapsed
//! (virtual) time to an [`Account`]; when profiling is enabled, each
//! charge also books the configured counter overhead against
//! [`Account::Counters`] *and* reports it to the caller so the host cost
//! model can slow the simulated machine down by the same amount — the
//! measurement perturbs the system, as it did in 1994.

use crate::time::{NanoDuration, VirtualDuration};
use std::fmt;

/// The cost accounts of Table 2, plus `Scheduler` (which the paper left
/// unprofiled because the 15 µs update would swamp the 30 µs thread
/// switch — we keep the account but, like the paper, exclude it from the
/// printed table by default).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)]
pub enum Account {
    Tcp,
    Ip,
    EthMachInterface,
    Copy,
    Checksum,
    MachSend,
    PacketWait,
    Gc,
    Misc,
    Counters,
    Scheduler,
}

impl Account {
    /// Every account, in Table 2's row order.
    pub const ALL: [Account; 11] = [
        Account::Tcp,
        Account::Ip,
        Account::EthMachInterface,
        Account::Copy,
        Account::Checksum,
        Account::MachSend,
        Account::PacketWait,
        Account::Gc,
        Account::Misc,
        Account::Counters,
        Account::Scheduler,
    ];

    /// The row label Table 2 uses.
    pub fn label(self) -> &'static str {
        match self {
            Account::Tcp => "TCP",
            Account::Ip => "IP",
            Account::EthMachInterface => "eth, Mach interf.",
            Account::Copy => "copy",
            Account::Checksum => "checksum",
            Account::MachSend => "Mach send",
            Account::PacketWait => "packet wait",
            Account::Gc => "g. c.",
            Account::Misc => "misc.",
            Account::Counters => "counters (est.)",
            Account::Scheduler => "scheduler",
        }
    }

    fn index(self) -> usize {
        match self {
            Account::Tcp => 0,
            Account::Ip => 1,
            Account::EthMachInterface => 2,
            Account::Copy => 3,
            Account::Checksum => 4,
            Account::MachSend => 5,
            Account::PacketWait => 6,
            Account::Gc => 7,
            Account::Misc => 8,
            Account::Counters => 9,
            Account::Scheduler => 10,
        }
    }
}

/// Per-account totals (nanosecond resolution — see [`NanoDuration`]).
#[derive(Copy, Clone, Default, Debug)]
struct Slot {
    total: NanoDuration,
    updates: u64,
}

/// The counter bank.
#[derive(Clone, Debug)]
pub struct Profiler {
    enabled: bool,
    /// Virtual cost of one counter update pair (paper: 15 µs).
    update_cost: NanoDuration,
    slots: [Slot; Account::ALL.len()],
}

/// The paper's measured cost of one start/stop counter pair.
pub const PAPER_COUNTER_UPDATE_COST: NanoDuration = NanoDuration::from_micros(15);

impl Profiler {
    /// A disabled profiler: charges are still accumulated (they are
    /// cheap), but no counter overhead is booked or reported.
    pub fn disabled() -> Self {
        Profiler { enabled: false, update_cost: NanoDuration::ZERO, slots: Default::default() }
    }

    /// An enabled profiler with the paper's 15 µs update cost.
    pub fn enabled() -> Self {
        Self::with_update_cost(PAPER_COUNTER_UPDATE_COST)
    }

    /// An enabled profiler with a custom update cost.
    pub fn with_update_cost(update_cost: NanoDuration) -> Self {
        Profiler { enabled: true, update_cost, slots: Default::default() }
    }

    /// True if counter overhead is being modeled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Charges `dur` of time to `account`. Returns the *extra* time the
    /// measurement itself costs (the counter update), which the caller
    /// must add to the simulated machine's busy time. The overhead is
    /// booked under [`Account::Counters`], estimated exactly as the paper
    /// does (updates × per-update cost).
    pub fn charge(&mut self, account: Account, dur: NanoDuration) -> NanoDuration {
        let slot = &mut self.slots[account.index()];
        slot.total += dur;
        slot.updates += 1;
        if self.enabled {
            let c = &mut self.slots[Account::Counters.index()];
            c.total += self.update_cost;
            c.updates += 1;
            self.update_cost
        } else {
            NanoDuration::ZERO
        }
    }

    /// Total time booked to `account`.
    pub fn total(&self, account: Account) -> NanoDuration {
        self.slots[account.index()].total
    }

    /// Number of charges booked to `account`.
    pub fn updates(&self, account: Account) -> u64 {
        self.slots[account.index()].updates
    }

    /// Sum over all accounts.
    pub fn grand_total(&self) -> NanoDuration {
        self.slots.iter().fold(NanoDuration::ZERO, |acc, s| acc + s.total)
    }

    /// Each account's share of `wall` (the run's elapsed time), as
    /// percentages in Table 2 row order. Note the paper's totals are
    /// 100.2 % and 94.0 % — overlap and unprofiled time make the column
    /// sums inexact, and ours are also not forced to 100.
    pub fn percentages(&self, wall: VirtualDuration) -> Vec<(Account, f64)> {
        let denom = NanoDuration::from(wall).as_nanos().max(1) as f64;
        Account::ALL.iter().map(|&a| (a, 100.0 * self.total(a).as_nanos() as f64 / denom)).collect()
    }

    /// Resets every account.
    pub fn reset(&mut self) {
        self.slots = Default::default();
    }
}

impl fmt::Display for Profiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in Account::ALL {
            let s = self.slots[a.index()];
            if s.updates > 0 {
                writeln!(f, "{:<18} {:>12} ({} updates)", a.label(), format!("{}", s.total), s.updates)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_has_no_overhead() {
        let mut p = Profiler::disabled();
        let extra = p.charge(Account::Tcp, NanoDuration::from_micros(100));
        assert_eq!(extra, NanoDuration::ZERO);
        assert_eq!(p.total(Account::Tcp).as_micros(), 100);
        assert_eq!(p.total(Account::Counters), NanoDuration::ZERO);
    }

    #[test]
    fn enabled_profiler_books_15us_per_update() {
        let mut p = Profiler::enabled();
        let extra = p.charge(Account::Ip, NanoDuration::from_micros(40));
        assert_eq!(extra.as_micros(), 15);
        p.charge(Account::Ip, NanoDuration::from_micros(60));
        assert_eq!(p.total(Account::Ip).as_micros(), 100);
        assert_eq!(p.updates(Account::Ip), 2);
        assert_eq!(p.total(Account::Counters).as_micros(), 30);
        assert_eq!(p.updates(Account::Counters), 2);
    }

    #[test]
    fn counters_account_charges_like_any_other() {
        // Updating a counter is itself a measured operation — the
        // "counters (est.)" row estimates exactly this self-cost.
        let mut p = Profiler::enabled();
        let extra = p.charge(Account::Counters, NanoDuration::from_micros(5));
        assert_eq!(extra.as_micros(), 15);
        assert_eq!(p.total(Account::Counters).as_micros(), 5 + 15);
    }

    #[test]
    fn percentages_against_wall_time() {
        let mut p = Profiler::disabled();
        p.charge(Account::Tcp, NanoDuration::from_micros(290));
        p.charge(Account::Ip, NanoDuration::from_micros(78));
        let pct = p.percentages(VirtualDuration::from_micros(1000));
        let tcp = pct.iter().find(|(a, _)| *a == Account::Tcp).unwrap().1;
        let ip = pct.iter().find(|(a, _)| *a == Account::Ip).unwrap().1;
        assert!((tcp - 29.0).abs() < 1e-9);
        assert!((ip - 7.8).abs() < 1e-9);
    }

    #[test]
    fn grand_total_and_reset() {
        let mut p = Profiler::enabled();
        p.charge(Account::Copy, NanoDuration::from_micros(10));
        assert_eq!(p.grand_total().as_micros(), 25); // 10 + 15 overhead
        p.reset();
        assert_eq!(p.grand_total(), NanoDuration::ZERO);
    }

    #[test]
    fn labels_match_table2() {
        assert_eq!(Account::EthMachInterface.label(), "eth, Mach interf.");
        assert_eq!(Account::Gc.label(), "g. c.");
        assert_eq!(Account::Counters.label(), "counters (est.)");
    }
}
