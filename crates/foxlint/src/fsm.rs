//! # FSM extraction — the implemented TCP state machine, recovered
//!
//! The paper's structural claim is that the SEGMENT-ARRIVES DAG and the
//! open/close/timer manipulations *are* the RFC 793 §3.9 state machine,
//! written as functions-for-merge-points. This pass makes that claim
//! checkable: it walks the two control files
//! (`crates/foxtcp/src/control/segment.rs` and `…/control/state.rs` —
//! the only files the `ctrl_data` lint permits to assign `core.state`)
//! and recovers every transition the code can perform, as
//! `(from-state, trigger, to-state)` triples in RFC vocabulary.
//!
//! ## Extraction rules
//!
//! The walk is brace- and match-aware, not semantic. Down every control
//! path it maintains an environment: the set of `TcpState` variants the
//! connection may be in, and what is known about the segment's
//! `rst`/`syn`/`fin`/`ack` flags. The environment is refined by:
//!
//! * `match` on `core.state` (also `core.state.clone()`, `&mut
//!   core.state`, or an alias bound by `let x = core.state.clone()`):
//!   each arm's pattern intersects the state set; `_` and binding
//!   patterns take the complement of the earlier arms.
//! * `if` on `core.state == / != TcpState::X`,
//!   `matches!(core.state, …)`, `.is_syn_received()`,
//!   `.is_synchronized()` — and the negations. When the guarded block
//!   ends in `return`, the negated constraint holds for the rest of the
//!   function (the early-return idiom the control files use).
//! * `if` on `….flags.rst/syn/fin/ack` (and negations), with the same
//!   early-return refinement. `debug_assert!(cond)` establishes `cond`.
//! * Calls into other functions of the control files propagate the
//!   caller's environment into the callee (context expansion to a
//!   fixpoint; the call graph is acyclic).
//!
//! A write `core.state = TcpState::X` yields one edge per variant in
//! the current from-set. The trigger is the entry point's kind — `open`
//! / `close` / `abort` / `timer` for the user-call and timer entries in
//! `state.rs` — or, under `segment_arrives`, the highest-precedence
//! segment flag known true: `rst` > `syn` > `fin` > `ack` (the same
//! precedence the engines use when stamping runtime
//! `StateTransition` causes, so static edges and observed edges share a
//! vocabulary). Variant names are normalized to RFC names
//! (`SynActive`/`SynPassive` → `SYN-RECEIVED`, `Estab` →
//! `ESTABLISHED`); self-edges after normalization are dropped — they
//! are unobservable at runtime (the engine only emits on a name
//! change).
//!
//! The recovered graph is ratcheted against `spec/tcp_fsm.txt` in both
//! directions, exactly like `foxlint.baseline`: an edge in code but not
//! spec fails, and an edge in spec but not code fails. See DESIGN.md
//! §5.13 for the spec-file format and the conformance-coverage ratchet
//! built on the same vocabulary.

use crate::{lex, match_brace, test_lines, Token};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;

/// The `TcpState` variants, in declaration order (bit i of a
/// [`StateSet`] is variant i).
const VARIANTS: &[&str] = &[
    "Closed",
    "Listen",
    "SynSent",
    "SynActive",
    "SynPassive",
    "Estab",
    "FinWait1",
    "FinWait2",
    "CloseWait",
    "Closing",
    "LastAck",
    "TimeWait",
];

/// RFC 793 §3.9 names, the spec-file and coverage vocabulary.
pub const RFC_STATES: &[&str] = &[
    "CLOSED",
    "LISTEN",
    "SYN-SENT",
    "SYN-RECEIVED",
    "ESTABLISHED",
    "FIN-WAIT-1",
    "FIN-WAIT-2",
    "CLOSE-WAIT",
    "CLOSING",
    "LAST-ACK",
    "TIME-WAIT",
];

/// Everything that can cause a transition: the three user calls, the
/// timers, and the four segment flags in arrival-precedence order.
pub const TRIGGERS: &[&str] = &["open", "close", "abort", "timer", "rst", "syn", "fin", "ack"];

/// Maps a `TcpState` variant name to its RFC name.
fn rfc_name(variant: &str) -> &'static str {
    match variant {
        "Closed" => "CLOSED",
        "Listen" => "LISTEN",
        "SynSent" => "SYN-SENT",
        "SynActive" | "SynPassive" => "SYN-RECEIVED",
        "Estab" => "ESTABLISHED",
        "FinWait1" => "FIN-WAIT-1",
        "FinWait2" => "FIN-WAIT-2",
        "CloseWait" => "CLOSE-WAIT",
        "Closing" => "CLOSING",
        "LastAck" => "LAST-ACK",
        "TimeWait" => "TIME-WAIT",
        _ => "?",
    }
}

type StateSet = u16;
const ALL_STATES: StateSet = (1 << 12) - 1;

fn variant_bit(name: &str) -> Option<StateSet> {
    VARIANTS.iter().position(|v| *v == name).map(|i| 1 << i)
}

/// The four segment flags the trigger vocabulary keys on, in
/// precedence order.
const FLAGS: &[&str] = &["rst", "syn", "fin", "ack"];

/// What is known about the path taken to a program point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Env {
    states: StateSet,
    /// `Some(true)` = flag known set, `Some(false)` = known clear.
    flags: [Option<bool>; 4],
}

impl Env {
    fn top() -> Self {
        Env { states: ALL_STATES, flags: [None; 4] }
    }
    fn trigger(&self, entry: &'static str) -> &'static str {
        if entry != "seg" {
            return entry;
        }
        for (i, f) in FLAGS.iter().enumerate() {
            if self.flags[i] == Some(true) {
                return f;
            }
        }
        "?"
    }
}

/// One path constraint recovered from a condition.
#[derive(Clone, Copy, Debug)]
enum Constraint {
    /// The state is in this set (complement = not in it).
    States(StateSet),
    /// Flag `FLAGS[i]` has this value.
    Flag(usize, bool),
    /// Nothing usable.
    Unknown,
}

impl Constraint {
    fn negate(self) -> Self {
        match self {
            Constraint::States(s) => Constraint::States(ALL_STATES ^ s),
            Constraint::Flag(i, v) => Constraint::Flag(i, !v),
            Constraint::Unknown => Constraint::Unknown,
        }
    }
    fn apply(self, env: &mut Env) {
        match self {
            Constraint::States(s) => env.states &= s,
            Constraint::Flag(i, v) => env.flags[i] = Some(v),
            Constraint::Unknown => {}
        }
    }
}

/// An edge key: `(from, to, trigger)` in RFC vocabulary.
pub type EdgeKey = (String, String, String);

/// The `file:line` sites of the `core.state = …` writes behind an edge.
pub type EdgeSites = BTreeSet<(String, usize)>;

/// The implemented transition graph: `(from, to, trigger)` in RFC
/// vocabulary, each with the `file:line` sites of the contributing
/// `core.state = …` writes.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FsmGraph {
    /// Edge → contributing write sites.
    pub edges: BTreeMap<EdgeKey, EdgeSites>,
}

impl FsmGraph {
    /// Edge keys in deterministic order.
    pub fn keys(&self) -> Vec<EdgeKey> {
        self.edges.keys().cloned().collect()
    }
}

/// The entry points of the control files and the trigger kind each one
/// carries. `seg` resolves per-write from the flag environment.
const ENTRIES: &[(&str, &str)] = &[
    ("segment_arrives", "seg"),
    ("active_open", "open"),
    ("passive_open", "open"),
    ("spawn_embryonic", "open"),
    ("close", "close"),
    ("abort", "abort"),
    ("timer_expired", "timer"),
];

struct FileToks {
    rel: String,
    toks: Vec<Token>,
    excluded: BTreeSet<usize>,
}

struct Extractor<'a> {
    files: &'a [FileToks],
    /// fn name → (file index, body token range inside the braces).
    fns: BTreeMap<String, (usize, usize, usize)>,
    graph: FsmGraph,
    /// Problems that make the extraction unsound (unknown trigger,
    /// unknown variant, recursion).
    errors: Vec<String>,
}

/// Extracts the implemented FSM from `(rel_path, source)` pairs — in
/// the real workspace, the two `control/` files.
pub fn extract(sources: &[(&str, &str)]) -> Result<FsmGraph, String> {
    let files: Vec<FileToks> = sources
        .iter()
        .map(|(rel, src)| {
            let (toks, _) = lex(src);
            let excluded = test_lines(&toks);
            FileToks { rel: (*rel).to_string(), toks, excluded }
        })
        .collect();
    let mut fns = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        let mut k = 0usize;
        while k < f.toks.len() {
            if f.toks[k].is_ident("fn") {
                if let Some(name) = f.toks.get(k + 1).and_then(|t| t.ident()) {
                    if !f.excluded.contains(&f.toks[k].line) {
                        let mut open = k + 2;
                        while open < f.toks.len()
                            && !f.toks[open].is_punct("{")
                            && !f.toks[open].is_punct(";")
                        {
                            open += 1;
                        }
                        if open < f.toks.len() && f.toks[open].is_punct("{") {
                            let close = match_brace(&f.toks, open);
                            fns.insert(name.to_string(), (fi, open + 1, close));
                            k = open + 1;
                            continue;
                        }
                    }
                }
            }
            k += 1;
        }
    }
    let mut ex = Extractor { files: &files, fns, graph: FsmGraph::default(), errors: Vec::new() };
    for (entry, kind) in ENTRIES {
        if let Some(&(fi, lo, hi)) = ex.fns.get(*entry) {
            let mut stack = vec![(*entry).to_string()];
            ex.walk(fi, lo, hi, Env::top(), kind, &mut stack);
        }
    }
    if ex.errors.is_empty() {
        Ok(ex.graph)
    } else {
        ex.errors.sort();
        ex.errors.dedup();
        Err(ex.errors.join("\n"))
    }
}

impl Extractor<'_> {
    fn record_write(&mut self, fi: usize, line: usize, to_variant: &str, env: Env, entry: &'static str) {
        let rel = self.files[fi].rel.clone();
        let Some(_) = variant_bit(to_variant) else {
            self.errors.push(format!("{rel}:{line}: state write to unknown variant `{to_variant}`"));
            return;
        };
        let trigger = env.trigger(entry);
        if trigger == "?" {
            self.errors.push(format!(
                "{rel}:{line}: cannot determine the trigger for the write to `{to_variant}` \
                 (no segment flag known on this path)"
            ));
            return;
        }
        let to = rfc_name(to_variant);
        for (i, v) in VARIANTS.iter().enumerate() {
            if env.states & (1 << i) != 0 {
                let from = rfc_name(v);
                if from == to {
                    continue; // unobservable: the name does not change
                }
                self.graph
                    .edges
                    .entry((from.to_string(), to.to_string(), trigger.to_string()))
                    .or_default()
                    .insert((rel.clone(), line));
            }
        }
    }

    /// Walks tokens `[lo, hi)` of file `fi` under `env`; returns true if
    /// the region's last statement begins with `return` (the region
    /// diverges, so a guard's negation holds after it).
    fn walk(
        &mut self,
        fi: usize,
        lo: usize,
        hi: usize,
        mut env: Env,
        entry: &'static str,
        stack: &mut Vec<String>,
    ) -> bool {
        let toks = &self.files[fi].toks;
        let mut i = lo;
        let mut stmt_start = true;
        let mut last_stmt_returns = false;
        while i < hi {
            let t = &toks[i];
            if stmt_start {
                last_stmt_returns = t.is_ident("return");
                stmt_start = false;
            }
            if t.is_punct(";") {
                stmt_start = true;
                i += 1;
                continue;
            }
            // `let x = core.state.clone();` — alias tracked per walk by
            // rewriting into a state-scrutinee marker: we just check the
            // shape inline where scrutinees are classified, so here we
            // only need to notice the binding name.
            if t.is_ident("if") {
                i = self.handle_if(fi, i, hi, &mut env, entry, stack);
                continue;
            }
            if t.is_ident("match") {
                i = self.handle_match(fi, i, hi, env, entry, stack);
                continue;
            }
            if t.is_ident("debug_assert") && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
                let open = i + 2;
                if toks.get(open).is_some_and(|o| o.is_punct("(")) {
                    let close = match_paren(toks, open);
                    let c = self.classify_condition(fi, open + 1, close, env, entry, stack);
                    c.apply(&mut env);
                    i = close + 1;
                    continue;
                }
            }
            // `core.state = TcpState::X` (the lexer folds `==` into one
            // punct, so a bare `=` is always an assignment).
            if t.is_ident("core")
                && toks.get(i + 1).is_some_and(|d| d.is_punct("."))
                && toks.get(i + 2).is_some_and(|s| s.is_ident("state"))
                && toks.get(i + 3).is_some_and(|e| e.is_punct("="))
                && toks.get(i + 4).is_some_and(|p| p.is_ident("TcpState"))
                && toks.get(i + 5).is_some_and(|c| c.is_punct("::"))
            {
                if let Some(variant) = toks.get(i + 6).and_then(|v| v.ident()) {
                    let variant = variant.to_string();
                    self.record_write(fi, toks[i + 6].line, &variant, env, entry);
                    i += 7;
                    // Skip a `{ … }` payload so its braces don't look
                    // like a block to the walker.
                    if i < hi && toks[i].is_punct("{") {
                        i = match_brace(toks, i) + 1;
                    }
                    continue;
                }
            }
            // A call to another control-file function: expand its body
            // under the current environment.
            if let Some(name) = t.ident() {
                let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && !toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct(".") || p.is_punct("::"))
                    && !toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_ident("fn"));
                if is_call {
                    if let Some(&(cfi, clo, chi)) = self.fns.get(name) {
                        if stack.iter().any(|s| s == name) {
                            self.errors.push(format!(
                                "{}:{}: recursive call to `{name}` — the control DAG must stay acyclic",
                                self.files[fi].rel, t.line
                            ));
                        } else {
                            stack.push(name.to_string());
                            self.walk(cfi, clo, chi, env, entry, stack);
                            stack.pop();
                        }
                    }
                }
            }
            if t.is_punct("{") {
                // A plain nested block (or struct literal): walk it under
                // the same environment.
                let close = match_brace(toks, i);
                self.walk(fi, i + 1, close, env, entry, stack);
                i = close + 1;
                continue;
            }
            i += 1;
        }
        last_stmt_returns
    }

    /// Handles `if <cond> { … } [else if … ] [else { … }]` starting at
    /// the `if` token; returns the index just past the whole chain.
    fn handle_if(
        &mut self,
        fi: usize,
        if_idx: usize,
        hi: usize,
        env: &mut Env,
        entry: &'static str,
        stack: &mut Vec<String>,
    ) -> usize {
        let toks = &self.files[fi].toks;
        // `if let` has no classifiable condition; scan it for calls only.
        let mut j = if_idx + 1;
        // Find the `{` opening the then-block at bracket depth 0.
        let cond_lo = j;
        let mut depth = 0i32;
        while j < hi {
            match toks[j].punct() {
                Some("(") | Some("[") => depth += 1,
                Some(")") | Some("]") => depth -= 1,
                Some("{") if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= hi {
            return hi;
        }
        let cond_hi = j;
        let c = self.classify_condition(fi, cond_lo, cond_hi, *env, entry, stack);
        let then_close = match_brace(&self.files[fi].toks, cond_hi);
        let mut then_env = *env;
        c.apply(&mut then_env);
        let then_diverges = self.walk(fi, cond_hi + 1, then_close, then_env, entry, stack);
        let toks = &self.files[fi].toks;
        let mut after = then_close + 1;
        let mut else_diverges = None;
        if after < hi && toks[after].is_ident("else") {
            if toks.get(after + 1).is_some_and(|n| n.is_ident("if")) {
                // else-if chain: treat the nested if under the negated
                // condition (which it refines further itself).
                let mut else_env = *env;
                c.negate().apply(&mut else_env);
                let mut scratch = else_env;
                after = self.handle_if(fi, after + 1, hi, &mut scratch, entry, stack);
                else_diverges = Some(false); // conservatively
            } else if toks.get(after + 1).is_some_and(|n| n.is_punct("{")) {
                let close = match_brace(toks, after + 1);
                let mut else_env = *env;
                c.negate().apply(&mut else_env);
                let d = self.walk(fi, after + 2, close, else_env, entry, stack);
                else_diverges = Some(d);
                after = close + 1;
            }
        }
        // Early-return refinement: a diverging branch leaves the other
        // branch's constraint in force for the rest of the region.
        match else_diverges {
            None if then_diverges => c.negate().apply(env),
            Some(true) if !then_diverges => c.apply(env),
            _ => {}
        }
        after
    }

    /// Handles a `match` starting at the `match` token. A match on the
    /// connection state narrows per arm; any other scrutinee is walked
    /// generically (every arm under the same environment). Returns the
    /// index just past the match block.
    fn handle_match(
        &mut self,
        fi: usize,
        m_idx: usize,
        hi: usize,
        env: Env,
        entry: &'static str,
        stack: &mut Vec<String>,
    ) -> usize {
        let toks = &self.files[fi].toks;
        let mut j = m_idx + 1;
        let mut depth = 0i32;
        while j < hi {
            match toks[j].punct() {
                Some("(") | Some("[") => depth += 1,
                Some(")") | Some("]") => depth -= 1,
                Some("{") if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= hi {
            return hi;
        }
        let open = j;
        let close = match_brace(toks, open);
        if !is_state_scrutinee(toks, m_idx + 1, open) {
            self.walk(fi, open + 1, close, env, entry, stack);
            return close + 1;
        }
        // Arms: pattern (to `=>` at depth 0) then body (block, or expr to
        // the `,` at depth 0).
        let mut k = open + 1;
        let mut matched_so_far: StateSet = 0;
        while k < close {
            // Pattern.
            let mut pat_states: StateSet = 0;
            let mut wildcard = false;
            let mut depth = 0i32;
            let pat_lo = k;
            while k < close {
                let t = &toks[k];
                if depth == 0 && t.is_punct("=>") {
                    break;
                }
                match t.punct() {
                    Some("(") | Some("[") | Some("{") => depth += 1,
                    Some(")") | Some("]") | Some("}") => depth -= 1,
                    _ => {}
                }
                if depth == 0 && t.is_ident("if") {
                    // Arm guard: no refinement taken from it.
                }
                if depth == 0 && t.is_ident("TcpState") {
                    if let Some(v) = toks.get(k + 2).and_then(|v| v.ident()) {
                        if let Some(bit) = variant_bit(v) {
                            pat_states |= bit;
                        }
                    }
                }
                if depth == 0 && t.is_ident("_") && k == pat_lo {
                    wildcard = true;
                }
                if depth == 0 && k == pat_lo && t.ident().is_some_and(|id| id != "TcpState" && id != "_") {
                    // A bare binding pattern catches everything left.
                    wildcard = true;
                }
                k += 1;
            }
            if k >= close {
                break;
            }
            if wildcard && pat_states == 0 {
                pat_states = ALL_STATES ^ matched_so_far;
            }
            matched_so_far |= pat_states;
            let mut arm_env = env;
            arm_env.states &= pat_states;
            // Body.
            k += 1; // past `=>`
            if k < close && toks[k].is_punct("{") {
                let body_close = match_brace(toks, k);
                if arm_env.states != 0 {
                    self.walk(fi, k + 1, body_close, arm_env, entry, stack);
                }
                k = body_close + 1;
                if k < close && toks[k].is_punct(",") {
                    k += 1;
                }
            } else {
                let mut depth = 0i32;
                let body_lo = k;
                while k < close {
                    let t = &toks[k];
                    if depth == 0 && t.is_punct(",") {
                        break;
                    }
                    match t.punct() {
                        Some("(") | Some("[") | Some("{") => depth += 1,
                        Some(")") | Some("]") | Some("}") => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                if arm_env.states != 0 {
                    self.walk(fi, body_lo, k, arm_env, entry, stack);
                }
                if k < close {
                    k += 1; // past `,`
                }
            }
        }
        close + 1
    }

    /// Classifies the condition tokens `[lo, hi)`, also expanding any
    /// calls to control-file functions found inside it (e.g.
    /// `if !check_ack(…)`).
    fn classify_condition(
        &mut self,
        fi: usize,
        lo: usize,
        hi: usize,
        env: Env,
        entry: &'static str,
        stack: &mut Vec<String>,
    ) -> Constraint {
        // Expand calls appearing in the condition.
        let mut call_sites = Vec::new();
        {
            let toks = &self.files[fi].toks;
            for k in lo..hi {
                if let Some(name) = toks[k].ident() {
                    let is_call = toks.get(k + 1).is_some_and(|n| n.is_punct("("))
                        && !toks.get(k.wrapping_sub(1)).is_some_and(|p| p.is_punct(".") || p.is_punct("::"));
                    if is_call && self.fns.contains_key(name) {
                        call_sites.push((name.to_string(), toks[k].line));
                    }
                }
            }
        }
        for (name, line) in call_sites {
            let &(cfi, clo, chi) = &self.fns[&name];
            if stack.contains(&name) {
                self.errors.push(format!(
                    "{}:{line}: recursive call to `{name}` — the control DAG must stay acyclic",
                    self.files[fi].rel
                ));
            } else {
                stack.push(name.clone());
                self.walk(cfi, clo, chi, env, entry, stack);
                stack.pop();
            }
        }
        let toks = &self.files[fi].toks;
        // Compound conditions carry no single constraint.
        if toks[lo..hi].iter().any(|t| t.is_punct("&&") || t.is_punct("||")) {
            return Constraint::Unknown;
        }
        let mut j = lo;
        let mut negated = false;
        while j < hi && toks[j].is_punct("!") {
            negated = !negated;
            j += 1;
        }
        let c = self.classify_atom(fi, j, hi);
        if negated {
            c.negate()
        } else {
            c
        }
    }

    /// A single (unnegated) condition atom.
    fn classify_atom(&mut self, fi: usize, lo: usize, hi: usize) -> Constraint {
        let toks = &self.files[fi].toks;
        if lo >= hi {
            return Constraint::Unknown;
        }
        // `matches!(scrutinee, pats)`
        if toks[lo].is_ident("matches")
            && toks.get(lo + 1).is_some_and(|t| t.is_punct("!"))
            && toks.get(lo + 2).is_some_and(|t| t.is_punct("("))
        {
            let close = match_paren(toks, lo + 2);
            // Scrutinee runs to the first depth-0 comma.
            let mut k = lo + 3;
            let mut depth = 0i32;
            while k < close {
                match toks[k].punct() {
                    Some("(") | Some("[") | Some("{") => depth += 1,
                    Some(")") | Some("]") | Some("}") => depth -= 1,
                    Some(",") if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if is_state_scrutinee(toks, lo + 3, k) {
                let mut set: StateSet = 0;
                let mut p = k;
                while p < close {
                    if toks[p].is_ident("TcpState") {
                        if let Some(v) = toks.get(p + 2).and_then(|t| t.ident()) {
                            if let Some(bit) = variant_bit(v) {
                                set |= bit;
                            }
                        }
                    }
                    p += 1;
                }
                return Constraint::States(set);
            }
            return Constraint::Unknown;
        }
        // `<scrutinee> == / != TcpState::V` (state equality).
        for k in lo..hi {
            let eq = toks[k].is_punct("==");
            let ne = toks[k].is_punct("!=");
            if (eq || ne)
                && is_state_scrutinee(toks, lo, k)
                && toks.get(k + 1).is_some_and(|t| t.is_ident("TcpState"))
            {
                if let Some(v) = toks.get(k + 3).and_then(|t| t.ident()) {
                    if let Some(bit) = variant_bit(v) {
                        let c = Constraint::States(bit);
                        return if ne { c.negate() } else { c };
                    }
                }
            }
            // Alias equality the other way round is not used.
        }
        // `<scrutinee>.is_syn_received()` / `.is_synchronized()`.
        for k in lo..hi {
            if toks[k].is_ident("is_syn_received") && is_state_scrutinee(toks, lo, k.saturating_sub(1)) {
                let set = variant_bit("SynActive").unwrap() | variant_bit("SynPassive").unwrap();
                return Constraint::States(set);
            }
            if toks[k].is_ident("is_synchronized") && is_state_scrutinee(toks, lo, k.saturating_sub(1)) {
                let unsync = variant_bit("Closed").unwrap()
                    | variant_bit("Listen").unwrap()
                    | variant_bit("SynSent").unwrap();
                return Constraint::States(ALL_STATES ^ unsync);
            }
        }
        // `….flags.rst/syn/fin/ack` — a pure field path ending in a flag.
        let mut idents: Vec<&str> = Vec::new();
        let mut pure_path = true;
        for t in &toks[lo..hi] {
            match (&t.ident(), &t.punct()) {
                (Some(id), _) => idents.push(id),
                (_, Some(".")) => {}
                _ => {
                    pure_path = false;
                    break;
                }
            }
        }
        if pure_path && idents.len() >= 2 {
            let last = idents[idents.len() - 1];
            let before = idents[idents.len() - 2];
            if before == "flags" {
                if let Some(fi) = FLAGS.iter().position(|f| *f == last) {
                    return Constraint::Flag(fi, true);
                }
            }
        }
        Constraint::Unknown
    }
}

/// Is `toks[lo..hi]` (modulo `&`/`mut` and a trailing `.clone()`) the
/// connection state — `core.state` or an alias bound from it?
/// Aliases are recognized structurally: an identifier that some earlier
/// `let <id> = core.state.clone()` in the same file binds.
fn is_state_scrutinee(toks: &[Token], mut lo: usize, mut hi: usize) -> bool {
    while lo < hi && (toks[lo].is_punct("&") || toks[lo].is_ident("mut")) {
        lo += 1;
    }
    // Strip a trailing `.clone()`.
    if hi >= lo + 4
        && toks[hi - 1].is_punct(")")
        && toks[hi - 2].is_punct("(")
        && toks[hi - 3].is_ident("clone")
        && toks[hi - 4].is_punct(".")
    {
        hi -= 4;
    }
    if hi == lo + 3
        && toks[lo].is_ident("core")
        && toks[lo + 1].is_punct(".")
        && toks[lo + 2].is_ident("state")
    {
        return true;
    }
    if hi == lo + 1 {
        if let Some(alias) = toks[lo].ident() {
            // Search backwards for `let <alias> = core.state.clone()`.
            for k in (0..lo).rev() {
                if toks[k].is_ident("let")
                    && toks.get(k + 1).is_some_and(|t| t.is_ident(alias))
                    && toks.get(k + 2).is_some_and(|t| t.is_punct("="))
                    && toks.get(k + 3).is_some_and(|t| t.is_ident("core"))
                    && toks.get(k + 4).is_some_and(|t| t.is_punct("."))
                    && toks.get(k + 5).is_some_and(|t| t.is_ident("state"))
                {
                    return true;
                }
            }
        }
    }
    false
}

/// Index of the `)` matching the `(` at `open`.
fn match_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

// ---------------------------------------------------------------------
// The declarative spec
// ---------------------------------------------------------------------

/// Which stack an `@untested` exemption covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Untested {
    /// Neither stack can exercise the edge at runtime.
    Both,
    /// Only the structured stack is exempt.
    Fox,
    /// Only the monolithic baseline is exempt.
    Xk,
}

/// One `FROM -> TO : trigger` line of `spec/tcp_fsm.txt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecEdge {
    /// RFC state name.
    pub from: String,
    /// RFC state name.
    pub to: String,
    /// One of [`TRIGGERS`].
    pub trigger: String,
    /// `Some((scope, reason))` if the edge carries a documented
    /// conformance-coverage exemption.
    pub untested: Option<(Untested, String)>,
    /// 1-based spec line.
    pub line: usize,
}

impl SpecEdge {
    /// The identity the ratchets compare on.
    pub fn key(&self) -> (String, String, String) {
        (self.from.clone(), self.to.clone(), self.trigger.clone())
    }
    /// Is this edge exempt from runtime coverage for the named stack
    /// (`"fox"` or `"xk"`)?
    pub fn untested_for(&self, stack: &str) -> bool {
        match self.untested {
            Some((Untested::Both, _)) => true,
            Some((Untested::Fox, _)) => stack == "fox",
            Some((Untested::Xk, _)) => stack == "xk",
            None => false,
        }
    }
}

/// Parses `spec/tcp_fsm.txt`. Format, one edge per line:
///
/// ```text
/// # comment
/// FROM -> TO : trigger
/// FROM -> TO : trigger  @untested(both|fox|xk: reason)
/// ```
///
/// State names must be RFC names, triggers one of [`TRIGGERS`]; an
/// `@untested` exemption requires a nonempty reason.
pub fn parse_spec(text: &str) -> Result<Vec<SpecEdge>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (edge_part, untested) = match line.find("@untested") {
            Some(p) => {
                let ann = &line[p..];
                let inner = ann
                    .strip_prefix("@untested")
                    .and_then(|r| r.trim_start().strip_prefix('('))
                    .and_then(|r| r.rfind(')').map(|c| &r[..c]))
                    .ok_or_else(|| format!("spec:{line_no}: malformed @untested annotation"))?;
                let (scope, reason) = inner
                    .split_once(':')
                    .ok_or_else(|| format!("spec:{line_no}: @untested needs `scope: reason`"))?;
                let scope = match scope.trim() {
                    "both" => Untested::Both,
                    "fox" => Untested::Fox,
                    "xk" => Untested::Xk,
                    s => return Err(format!("spec:{line_no}: unknown @untested scope `{s}`")),
                };
                if reason.trim().is_empty() {
                    return Err(format!("spec:{line_no}: @untested requires a nonempty reason"));
                }
                (&line[..p], Some((scope, reason.trim().to_string())))
            }
            None => (line, None),
        };
        let (from, rest) = edge_part
            .split_once("->")
            .ok_or_else(|| format!("spec:{line_no}: expected `FROM -> TO : trigger`"))?;
        let (to, trigger) =
            rest.split_once(':').ok_or_else(|| format!("spec:{line_no}: missing `: trigger`"))?;
        let (from, to, trigger) = (from.trim(), to.trim(), trigger.trim());
        for s in [from, to] {
            if !RFC_STATES.contains(&s) {
                return Err(format!("spec:{line_no}: unknown state `{s}`"));
            }
        }
        if !TRIGGERS.contains(&trigger) {
            return Err(format!("spec:{line_no}: unknown trigger `{trigger}`"));
        }
        out.push(SpecEdge {
            from: from.to_string(),
            to: to.to_string(),
            trigger: trigger.to_string(),
            untested,
            line: line_no,
        });
    }
    // Duplicate edges would make the coverage accounting ambiguous.
    let mut seen = BTreeSet::new();
    for e in &out {
        if !seen.insert(e.key()) {
            return Err(format!("spec:{}: duplicate edge {} -> {} : {}", e.line, e.from, e.to, e.trigger));
        }
    }
    Ok(out)
}

/// The two-way code↔spec drift.
#[derive(Debug, Default)]
pub struct FsmDrift {
    /// Edges the code implements that the spec does not list, with the
    /// contributing write sites.
    pub code_only: Vec<(EdgeKey, EdgeSites)>,
    /// Edges the spec lists that the code does not implement.
    pub spec_only: Vec<SpecEdge>,
}

impl FsmDrift {
    /// No drift in either direction?
    pub fn is_clean(&self) -> bool {
        self.code_only.is_empty() && self.spec_only.is_empty()
    }
}

/// Compares the extracted graph against the spec in both directions.
pub fn diff_spec(graph: &FsmGraph, spec: &[SpecEdge]) -> FsmDrift {
    let spec_keys: BTreeSet<_> = spec.iter().map(|e| e.key()).collect();
    let mut d = FsmDrift::default();
    for (k, sites) in &graph.edges {
        if !spec_keys.contains(k) {
            d.code_only.push((k.clone(), sites.clone()));
        }
    }
    for e in spec {
        if !graph.edges.contains_key(&e.key()) {
            d.spec_only.push(e.clone());
        }
    }
    d
}

/// Renders the graph as deterministic Graphviz DOT. User-call edges are
/// blue, timer edges dashed gray, segment edges black.
pub fn to_dot(graph: &FsmGraph) -> String {
    let mut s = String::from(
        "// Generated by `foxlint --fsm-dot` from crates/foxtcp/src/control/.\n\
         // Regenerate after any state-machine change; ci.sh checks the spec\n\
         // diff, DESIGN.md \u{a7}5.13 documents the extraction rules.\n\
         digraph tcp_fsm {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    let mut states = BTreeSet::new();
    for (from, to, _) in graph.edges.keys() {
        states.insert(from.clone());
        states.insert(to.clone());
    }
    for st in &states {
        let _ = writeln!(s, "  \"{st}\";");
    }
    for (from, to, trigger) in graph.edges.keys() {
        let style = match trigger.as_str() {
            "open" | "close" | "abort" => ", color=blue",
            "timer" => ", color=gray, style=dashed",
            _ => "",
        };
        let _ = writeln!(s, "  \"{from}\" -> \"{to}\" [label=\"{trigger}\"{style}];");
    }
    s.push_str("}\n");
    s
}

// ---------------------------------------------------------------------
// Workspace entry point
// ---------------------------------------------------------------------

/// The control files the FSM lives in — exactly the set the
/// `ctrl_data` lint confines `core.state` writes to.
pub const CONTROL_FILES: &[&str] =
    &["crates/foxtcp/src/control/segment.rs", "crates/foxtcp/src/control/state.rs"];

/// Workspace-relative spec path.
pub const SPEC_PATH: &str = "spec/tcp_fsm.txt";

/// Outcome of `--fsm-check` over a workspace root.
#[derive(Debug)]
pub struct FsmReport {
    /// The extracted graph.
    pub graph: FsmGraph,
    /// The parsed spec.
    pub spec: Vec<SpecEdge>,
    /// The two-way diff.
    pub drift: FsmDrift,
}

/// Extracts the implemented FSM from the control files under `root`.
pub fn extract_root(root: &Path) -> Result<FsmGraph, String> {
    let mut sources = Vec::new();
    for rel in CONTROL_FILES {
        let path = root.join(rel);
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        sources.push(((*rel).to_string(), src));
    }
    let refs: Vec<(&str, &str)> = sources.iter().map(|(r, s)| (r.as_str(), s.as_str())).collect();
    extract(&refs)
}

/// Extracts the FSM from the workspace under `root` and diffs it
/// against `spec/tcp_fsm.txt`.
pub fn check_fsm(root: &Path) -> Result<FsmReport, String> {
    let graph = extract_root(root)?;
    let spec_path = root.join(SPEC_PATH);
    let spec_text =
        std::fs::read_to_string(&spec_path).map_err(|e| format!("{}: {e}", spec_path.display()))?;
    let spec = parse_spec(&spec_text)?;
    let drift = diff_spec(&graph, &spec);
    Ok(FsmReport { graph, spec, drift })
}
