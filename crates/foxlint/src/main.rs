//! `foxlint` CLI: lints the workspace and ratchets against the
//! checked-in baseline.
//!
//! ```text
//! cargo run -p foxlint -- --check              # default mode
//! cargo run -p foxlint -- --update-baseline    # re-bless current counts
//! cargo run -p foxlint -- --list               # describe the lints
//! cargo run -p foxlint -- --format json        # machine-readable findings
//! cargo run -p foxlint -- --fsm-check          # extracted FSM vs spec/tcp_fsm.txt
//! cargo run -p foxlint -- --fsm-dot            # extracted FSM as Graphviz DOT
//! ```
//!
//! Exit status 0 means no new violations and no stale baseline entries;
//! anything else is 1, with every offending site printed as
//! `file:line: lint: message` (or as JSON records with `--format json`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut update = false;
    let mut list = false;
    let mut fsm_check = false;
    let mut fsm_dot = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => {}
            "--update-baseline" => update = true,
            "--list" => list = true,
            "--fsm-check" => fsm_check = true,
            "--fsm-dot" => fsm_dot = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => return usage("--format needs `text` or `json`"),
            },
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if list {
        for (name, desc) in foxlint::LINTS {
            println!("{name}: {desc}");
        }
        return ExitCode::SUCCESS;
    }
    if fsm_dot {
        match foxlint::fsm::extract_root(&root) {
            Ok(graph) => {
                print!("{}", foxlint::fsm::to_dot(&graph));
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("foxlint: fsm extraction failed:\n{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if fsm_check {
        return run_fsm_check(&root);
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("foxlint.baseline"));

    let outcome = foxlint::check_root(&root);
    let current = foxlint::count(&outcome.violations);

    if update {
        if let Err(e) = std::fs::write(&baseline_path, foxlint::render_baseline(&current)) {
            eprintln!("foxlint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "foxlint: baseline updated: {} entr{} ({} violation(s) across {} files)",
            current.len(),
            if current.len() == 1 { "y" } else { "ies" },
            outcome.violations.len(),
            outcome.files,
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match foxlint::load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("foxlint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let drift = foxlint::compare(&current, &baseline);

    if json {
        // Machine-readable findings: every current violation, whether
        // baselined or new — consumers apply their own policy.
        print!("{}", foxlint::render_json(&outcome.violations));
    }

    let mut new = 0usize;
    for (lint, path, cur, base) in &drift.grown {
        new += cur - base;
        // Print the actual sites for the grown group, not just counts.
        for v in outcome.violations.iter().filter(|v| v.lint == *lint && v.path == *path) {
            eprintln!("{v}");
        }
        if *base > 0 {
            eprintln!("  note: {lint}:{path} had {base} baselined violation(s); now {cur}",);
        }
    }
    for (lint, path, cur, base) in &drift.stale {
        eprintln!(
            "stale baseline entry: {lint}\t{path}\t{base} (now {cur}) — \
             run `cargo run -p foxlint -- --update-baseline`",
        );
    }
    println!(
        "foxlint: {} files checked, {} allowed, {} new violation(s), {} stale baseline entr{}",
        outcome.files,
        outcome.allowed,
        new,
        drift.stale.len(),
        if drift.stale.len() == 1 { "y" } else { "ies" },
    );
    if drift.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `--fsm-check`: extract the implemented transition graph and ratchet
/// it against `spec/tcp_fsm.txt` in both directions.
fn run_fsm_check(root: &std::path::Path) -> ExitCode {
    let report = match foxlint::fsm::check_fsm(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("foxlint: fsm check failed:\n{e}");
            return ExitCode::FAILURE;
        }
    };
    for ((from, to, trigger), sites) in &report.drift.code_only {
        let at = sites.iter().map(|(f, l)| format!("{f}:{l}")).collect::<Vec<_>>().join(", ");
        eprintln!(
            "fsm: code implements {from} -> {to} : {trigger} (at {at}) but spec/tcp_fsm.txt \
             does not list it — add the edge with its RFC citation, or fix the code"
        );
    }
    for e in &report.drift.spec_only {
        eprintln!(
            "fsm: spec/tcp_fsm.txt:{} lists {} -> {} : {} but the control files do not \
             implement it — implement the edge, or remove it from the spec",
            e.line, e.from, e.to, e.trigger
        );
    }
    println!(
        "foxlint: fsm {} edges implemented, {} in spec, {} code-only, {} spec-only",
        report.graph.edges.len(),
        report.spec.len(),
        report.drift.code_only.len(),
        report.drift.spec_only.len(),
    );
    if report.drift.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "foxlint: {err}\n\
         usage: foxlint [--check] [--update-baseline] [--list] [--format text|json]\n\
         \x20              [--fsm-check] [--fsm-dot] [--root DIR] [--baseline FILE]"
    );
    ExitCode::FAILURE
}
