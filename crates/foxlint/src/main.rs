//! `foxlint` CLI: lints the workspace and ratchets against the
//! checked-in baseline.
//!
//! ```text
//! cargo run -p foxlint -- --check              # default mode
//! cargo run -p foxlint -- --update-baseline    # re-bless current counts
//! cargo run -p foxlint -- --list               # describe the lints
//! ```
//!
//! Exit status 0 means no new violations and no stale baseline entries;
//! anything else is 1, with every offending site printed as
//! `file:line: lint: message`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut update = false;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => {}
            "--update-baseline" => update = true,
            "--list" => list = true,
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if list {
        for (name, desc) in foxlint::LINTS {
            println!("{name}: {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("foxlint.baseline"));

    let outcome = foxlint::check_root(&root);
    let current = foxlint::count(&outcome.violations);

    if update {
        if let Err(e) = std::fs::write(&baseline_path, foxlint::render_baseline(&current)) {
            eprintln!("foxlint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "foxlint: baseline updated: {} entr{} ({} violation(s) across {} files)",
            current.len(),
            if current.len() == 1 { "y" } else { "ies" },
            outcome.violations.len(),
            outcome.files,
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match foxlint::load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("foxlint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let drift = foxlint::compare(&current, &baseline);

    let mut new = 0usize;
    for (lint, path, cur, base) in &drift.grown {
        new += cur - base;
        // Print the actual sites for the grown group, not just counts.
        for v in outcome.violations.iter().filter(|v| v.lint == *lint && v.path == *path) {
            eprintln!("{v}");
        }
        if *base > 0 {
            eprintln!("  note: {lint}:{path} had {base} baselined violation(s); now {cur}",);
        }
    }
    for (lint, path, cur, base) in &drift.stale {
        eprintln!(
            "stale baseline entry: {lint}\t{path}\t{base} (now {cur}) — \
             run `cargo run -p foxlint -- --update-baseline`",
        );
    }
    println!(
        "foxlint: {} files checked, {} allowed, {} new violation(s), {} stale baseline entr{}",
        outcome.files,
        outcome.allowed,
        new,
        drift.stale.len(),
        if drift.stale.len() == 1 { "y" } else { "ies" },
    );
    if drift.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "foxlint: {err}\n\
         usage: foxlint [--check] [--update-baseline] [--list] [--root DIR] [--baseline FILE]"
    );
    ExitCode::FAILURE
}
