//! # foxlint — machine-checked invariants for trace determinism
//!
//! The paper's central claim is that a quasi-synchronous TCP produces
//! the *same trace from the same seed*. That property is global: one
//! stray `Instant::now()`, one iteration over a `HashMap`, one panic on
//! a malformed segment, and byte-identical replay silently dies. The
//! type system cannot see any of these, so this crate checks them
//! mechanically — a registry-free, dependency-free lexer over the
//! workspace source enforcing these lints:
//!
//! * [`determinism`](LINTS) — no ambient time (`Instant`, `SystemTime`)
//!   or ambient randomness (`thread_rng`, `RandomState`, …) outside
//!   `crates/bench`. All time must come from the virtual clock, all
//!   randomness from a seeded generator.
//! * `hash_iter` — no `HashMap`/`HashSet` in trace-affecting crates
//!   (foxtcp, xktcp, protocols, simnet, foxbasis, harness): hash
//!   iteration order is randomized per process, so any iteration —
//!   including `retain` — can reorder observable effects. `BTreeMap`/
//!   `BTreeSet` give the same O(log n) and a total order.
//! * `rx_panic` — no `unwrap`/`expect`/`panic!`-family calls in code a
//!   hostile packet can reach: the `crates/wire` decoders (which must
//!   also avoid unchecked indexing in `decode*`/`parse*` functions) and
//!   the segment-input paths of both TCP engines. Malformed input is an
//!   `Err`, never a crash.
//! * `tcb_write` — TCB sequence-space fields may be assigned only
//!   inside the whitelisted engine modules; everything else goes
//!   through the engine API, preserving the quasi-synchronous
//!   containment of connection state.
//! * `cc_write` — `cwnd`/`ssthresh` may be assigned only inside
//!   `crates/foxtcp/src/congestion.rs`, so every congestion decision
//!   flows through the `CongestionControl` trait.
//! * `win_cast` — no raw `as u16` on window-named values outside
//!   `crates/wire`: the codec's `wire_window` is the one sanctioned
//!   16-bit narrowing (it applies the negotiated scale and the cap).
//! * `ctrl_data` — the control/data split inside foxtcp: `state` may be
//!   assigned only under `crates/foxtcp/src/control/`, and the TCB's
//!   sequence/window/congestion fields only under
//!   `crates/foxtcp/src/data/` (or `tcb.rs` itself). Control hands data
//!   an `EstablishedHandle`; data reports back through `DataEvent` —
//!   neither half writes the other's fields. See DESIGN.md §5.11.
//!
//! Violations are reported as `file:line: lint: message`. A checked-in
//! baseline (`foxlint.baseline`) ratchets: new violations fail, and so
//! do stale entries (fixed counts must be removed with
//! `--update-baseline`). A per-site escape hatch
//! `// foxlint::allow(<lint>): <reason>` suppresses the same or next
//! line; the reason is mandatory.
//!
//! The analysis is lexical, not semantic — by design. It never needs to
//! resolve types, so it has zero dependencies and runs in milliseconds,
//! and the patterns it matches (banned identifiers, banned call shapes,
//! field assignments) are exactly the ones whose absence the trace
//! proofs assume. See DESIGN.md §5.8.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub mod fsm;

/// The lint registry: `(name, one-line description)`.
pub const LINTS: &[(&str, &str)] = &[
    ("determinism", "no ambient time or randomness outside crates/bench"),
    ("hash_iter", "no HashMap/HashSet in trace-affecting crates (randomized iteration order)"),
    ("rx_panic", "no panics or unchecked indexing in packet-input paths"),
    ("tcb_write", "TCB state fields assigned only inside whitelisted engine modules"),
    ("cc_write", "cwnd/ssthresh assigned only inside the congestion-control module"),
    ("win_cast", "no raw `as u16` window casts outside the wire codec"),
    ("ctrl_data", "state transitions only under control/, data-path fields only under data/"),
    ("shard_global", "no `static mut` or `thread_local!` state in trace-affecting crates"),
    ("shard_rc", "no `Rc` in foxtcp's crate-public signatures: shared state must not escape the engine"),
    (
        "shard_tcb",
        "TCB access only inside engine/control/data: everyone else goes through the demuxed engine API",
    ),
];

/// Crates whose execution order is observable in traces.
const TRACE_CRATES: &[&str] = &["foxtcp", "xktcp", "protocols", "simnet", "foxbasis", "harness"];

/// Identifiers that pull in wall-clock time or ambient randomness.
const NONDET_IDENTS: &[&str] =
    &["Instant", "SystemTime", "thread_rng", "from_entropy", "RandomState", "DefaultHasher"];

/// Iteration methods whose order depends on the container.
const ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "drain", "retain", "into_iter"];

/// TCB fields (RFC 793 names) whose writes are contained. The
/// congestion windows are fenced separately (and more tightly) by
/// `cc_write` below.
const TCB_FIELDS: &[&str] = &[
    "snd_una",
    "snd_nxt",
    "snd_wnd",
    "snd_wl1",
    "snd_wl2",
    "snd_up",
    "iss",
    "irs",
    "rcv_nxt",
    "rcv_up",
    "dup_acks",
    "recover",
    "persist_backoff",
];

/// Congestion-window fields: assignable only inside the congestion
/// module, so every algorithm decision flows through the
/// `CongestionControl` trait.
const CC_FIELDS: &[&str] = &["cwnd", "ssthresh"];

/// The one file allowed to assign [`CC_FIELDS`].
const CC_WHITELIST: &[&str] = &["crates/foxtcp/src/data/congestion.rs"];

/// foxtcp files that may write TCB fields (the data path proper, plus
/// the TCB's own methods and the monolithic baseline).
const TCB_WHITELIST: &[&str] = &[
    "crates/foxtcp/src/data/transfer.rs",
    "crates/foxtcp/src/data/send.rs",
    "crates/foxtcp/src/data/resend.rs",
    "crates/foxtcp/src/data/fastpath.rs",
    "crates/foxtcp/src/tcb.rs",
    "crates/xktcp/src/lib.rs",
];

/// foxtcp rx-path files checked whole.
const FOXTCP_RX_FILES: &[&str] = &[
    "crates/foxtcp/src/control/segment.rs",
    "crates/foxtcp/src/data/transfer.rs",
    "crates/foxtcp/src/data/fastpath.rs",
    "crates/foxtcp/src/demux.rs",
];

/// The control side of the foxtcp split: connection lifecycle.
const CONTROL_PREFIX: &str = "crates/foxtcp/src/control/";

/// The data side of the foxtcp split: transfer machinery.
const DATA_PREFIX: &str = "crates/foxtcp/src/data/";

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Lint name (or `directive` for a malformed allow comment).
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path, self.line, self.lint, self.message)
    }
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Punct(String),
}

#[derive(Debug, Clone)]
pub(crate) struct Token {
    pub(crate) line: usize,
    pub(crate) tok: Tok,
}

impl Token {
    pub(crate) fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            Tok::Punct(_) => None,
        }
    }
    pub(crate) fn punct(&self) -> Option<&str> {
        match &self.tok {
            Tok::Punct(s) => Some(s),
            Tok::Ident(_) => None,
        }
    }
    pub(crate) fn is_punct(&self, p: &str) -> bool {
        self.punct() == Some(p)
    }
    pub(crate) fn is_ident(&self, i: &str) -> bool {
        self.ident() == Some(i)
    }
}

/// A `// foxlint::allow(<lint>): <reason>` comment.
#[derive(Debug, Clone)]
struct Allow {
    line: usize,
    lint: String,
    /// `Some(msg)` if the directive is malformed.
    error: Option<String>,
}

const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "=>", "->", "::", "..", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

pub(crate) fn lex(src: &str) -> (Vec<Token>, Vec<Allow>) {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut allows = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let comment: String = chars[start..j].iter().collect();
                if let Some(a) = parse_allow(&comment, line) {
                    allows.push(a);
                }
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
            }
            '\'' => {
                // Lifetime or char literal. A lifetime is `'` followed by
                // ident chars with no closing quote right after one char.
                let next = chars.get(i + 1).copied();
                let after = chars.get(i + 2).copied();
                let is_lifetime =
                    matches!(next, Some(n) if n.is_alphabetic() || n == '_') && after != Some('\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    i = j;
                } else {
                    // Char literal: handle escapes, find closing quote.
                    let mut j = i + 1;
                    while j < chars.len() {
                        if chars[j] == '\\' {
                            j += 2;
                        } else if chars[j] == '\'' {
                            j += 1;
                            break;
                        } else {
                            if chars[j] == '\n' {
                                line += 1;
                            }
                            j += 1;
                        }
                    }
                    i = j;
                }
            }
            _ if c.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                i = j; // numbers carry no lint signal
            }
            _ if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let word: String = chars[i..j].iter().collect();
                // Raw/byte string prefixes: r"…", r#"…"#, br"…", b"…".
                let nxt = chars.get(j).copied();
                if (word == "r" || word == "br") && (nxt == Some('"') || nxt == Some('#')) {
                    i = skip_raw_string(&chars, j, &mut line);
                } else if word == "b" && nxt == Some('"') {
                    i = skip_string(&chars, j, &mut line);
                } else {
                    toks.push(Token { line, tok: Tok::Ident(word) });
                    i = j;
                }
            }
            _ => {
                let mut matched = false;
                for op in MULTI_PUNCT {
                    if chars[i..].starts_with(&op.chars().collect::<Vec<_>>()[..]) {
                        toks.push(Token { line, tok: Tok::Punct((*op).to_string()) });
                        i += op.len();
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    toks.push(Token { line, tok: Tok::Punct(c.to_string()) });
                    i += 1;
                }
            }
        }
    }
    (toks, allows)
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// past the closing quote.
fn skip_string(chars: &[char], open: usize, line: &mut usize) -> usize {
    let mut j = open + 1;
    while j < chars.len() {
        match chars[j] {
            // An escape consumes the next char too — which may be a real
            // newline (`\` line continuation, legal in `"…"`/`b"…"`).
            // Count it, or every token after the string reports one line
            // early and `foxlint::allow` stops matching its target line.
            '\\' => {
                if chars.get(j + 1) == Some(&'\n') {
                    *line += 1;
                }
                j += 2;
            }
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Skips `r"…"` / `r#"…"#` starting at the first `#` or `"` after the
/// `r`/`br` prefix; returns the index past the closing delimiter.
fn skip_raw_string(chars: &[char], mut j: usize, line: &mut usize) -> usize {
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return j;
    }
    j += 1;
    while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
        } else if chars[j] == '"' {
            let mut k = j + 1;
            let mut n = 0;
            while n < hashes && chars.get(k) == Some(&'#') {
                n += 1;
                k += 1;
            }
            if n == hashes {
                return k;
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    j
}

fn parse_allow(comment: &str, line: usize) -> Option<Allow> {
    let t = comment.trim();
    let rest = t.strip_prefix("foxlint::allow")?;
    let make_err = |msg: &str| Some(Allow { line, lint: String::new(), error: Some(msg.to_string()) });
    let Some(rest) = rest.trim_start().strip_prefix('(') else {
        return make_err("malformed foxlint::allow: expected `(<lint>): <reason>`");
    };
    let Some(close) = rest.find(')') else {
        return make_err("malformed foxlint::allow: missing `)`");
    };
    let lint = rest[..close].trim().to_string();
    if !LINTS.iter().any(|(n, _)| *n == lint) {
        return Some(Allow {
            line,
            lint: lint.clone(),
            error: Some(format!("foxlint::allow names unknown lint `{lint}`")),
        });
    }
    let after = rest[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix(':') else {
        return make_err("foxlint::allow requires `: <reason>` after the lint name");
    };
    if reason.trim().is_empty() {
        return make_err("foxlint::allow requires a nonempty reason");
    }
    Some(Allow { line, lint, error: None })
}

// ---------------------------------------------------------------------
// Structure discovery: test regions and fn regions
// ---------------------------------------------------------------------

/// Index of the `}` matching the `{` at `open`, or the last token.
pub(crate) fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Lines covered by `#[cfg(test)]` / `#[test]` items (the attribute line
/// through the close of the following brace block).
pub(crate) fn test_lines(toks: &[Token]) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    let mut k = 0usize;
    while k < toks.len() {
        let cfg_test = k + 6 < toks.len()
            && toks[k].is_punct("#")
            && toks[k + 1].is_punct("[")
            && toks[k + 2].is_ident("cfg")
            && toks[k + 3].is_punct("(")
            && toks[k + 4].is_ident("test")
            && toks[k + 5].is_punct(")")
            && toks[k + 6].is_punct("]");
        let bare_test = k + 3 < toks.len()
            && toks[k].is_punct("#")
            && toks[k + 1].is_punct("[")
            && toks[k + 2].is_ident("test")
            && toks[k + 3].is_punct("]");
        if cfg_test || bare_test {
            let start_line = toks[k].line;
            let mut open = k;
            while open < toks.len() && !toks[open].is_punct("{") {
                open += 1;
            }
            if open < toks.len() {
                let close = match_brace(toks, open);
                for l in start_line..=toks[close].line {
                    out.insert(l);
                }
                k = close + 1;
                continue;
            }
        }
        k += 1;
    }
    out
}

/// `(name, first line, last line)` of every `fn` body.
fn fn_regions(toks: &[Token]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < toks.len() {
        if toks[k].is_ident("fn") {
            if let Some(name) = toks.get(k + 1).and_then(|t| t.ident()) {
                let name = name.to_string();
                let mut open = k + 2;
                while open < toks.len() && !toks[open].is_punct("{") && !toks[open].is_punct(";") {
                    open += 1;
                }
                if open < toks.len() && toks[open].is_punct("{") {
                    let close = match_brace(toks, open);
                    out.push((name, toks[k].line, toks[close].line));
                    k = open + 1; // descend: nested fns found too
                    continue;
                }
            }
        }
        k += 1;
    }
    out
}

// ---------------------------------------------------------------------
// Lint passes
// ---------------------------------------------------------------------

struct FileCtx<'a> {
    rel: &'a str,
    krate: Option<&'a str>,
    toks: &'a [Token],
    excluded: &'a BTreeSet<usize>,
}

impl FileCtx<'_> {
    fn emit(&self, out: &mut Vec<Violation>, line: usize, lint: &'static str, message: String) {
        if !self.excluded.contains(&line) {
            out.push(Violation { path: self.rel.to_string(), line, lint, message });
        }
    }
}

fn lint_determinism(cx: &FileCtx, out: &mut Vec<Violation>) {
    if cx.krate == Some("bench") || cx.krate == Some("foxlint") {
        return;
    }
    for t in cx.toks {
        if let Some(id) = t.ident() {
            if NONDET_IDENTS.contains(&id) {
                cx.emit(
                    out,
                    t.line,
                    "determinism",
                    format!("nondeterministic source `{id}`: use the virtual clock / seeded rng"),
                );
            }
        }
    }
}

fn lint_hash_iter(cx: &FileCtx, out: &mut Vec<Violation>) {
    let Some(k) = cx.krate else { return };
    if !TRACE_CRATES.contains(&k) {
        return;
    }
    // Any hash container at all: iteration order is per-process random,
    // and even lookup-only tables invite future iteration.
    let mut hash_names: BTreeSet<String> = BTreeSet::new();
    for (i, t) in cx.toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if id == "HashMap" || id == "HashSet" {
            cx.emit(
                out,
                t.line,
                "hash_iter",
                format!("`{id}` in trace-affecting crate: use BTreeMap/BTreeSet"),
            );
            // Remember declared names: `name: …HashMap<…` / `name = HashMap::new`.
            for back in (0..i).rev().take(8) {
                let bt = &cx.toks[back];
                if bt.is_punct(":") || bt.is_punct("=") {
                    if let Some(name) = cx.toks.get(back.wrapping_sub(1)).and_then(|t| t.ident()) {
                        hash_names.insert(name.to_string());
                    }
                    break;
                }
                if bt.is_punct(";") || bt.is_punct("{") || bt.is_punct("}") {
                    break;
                }
            }
        }
    }
    // `.iter()`-family calls on names known to be hash containers.
    for w in cx.toks.windows(4) {
        let [recv, dot, method, open] = w else { continue };
        if dot.is_punct(".")
            && open.is_punct("(")
            && method.ident().is_some_and(|m| ITER_METHODS.contains(&m))
            && recv.ident().is_some_and(|r| hash_names.contains(r))
        {
            cx.emit(
                out,
                method.line,
                "hash_iter",
                format!(
                    "iteration (`{}`) over hash container `{}`: order is nondeterministic",
                    method.ident().unwrap_or(""),
                    recv.ident().unwrap_or(""),
                ),
            );
        }
    }
}

/// Lines of `crates/xktcp/src/lib.rs` / `engine.rs` covered by the named
/// rx-path functions.
fn lines_of_fns(toks: &[Token], names: &[&str]) -> BTreeSet<usize> {
    let mut set = BTreeSet::new();
    for (name, lo, hi) in fn_regions(toks) {
        if names.contains(&name.as_str()) {
            for l in lo..=hi {
                set.insert(l);
            }
        }
    }
    set
}

fn lint_rx_panic(cx: &FileCtx, out: &mut Vec<Violation>) {
    let wire = cx.rel.starts_with("crates/wire/src/");
    let foxtcp_whole = FOXTCP_RX_FILES.contains(&cx.rel);
    let engine = cx.rel == "crates/foxtcp/src/engine.rs";
    let xk = cx.rel == "crates/xktcp/src/lib.rs";
    if !(wire || foxtcp_whole || engine || xk) {
        return;
    }
    // Which lines are in scope for the panic rules?
    let scoped: Option<BTreeSet<usize>> = if engine {
        Some(lines_of_fns(cx.toks, &["internalize"]))
    } else if xk {
        Some(lines_of_fns(cx.toks, &["input", "process_segment"]))
    } else {
        None // whole file
    };
    let in_scope = |line: usize| scoped.as_ref().is_none_or(|s| s.contains(&line));
    // Unchecked indexing is checked only inside wire decode*/parse* fns,
    // where the input is attacker-controlled bytes.
    let decode_lines: BTreeSet<usize> = if wire {
        fn_regions(cx.toks)
            .into_iter()
            .filter(|(n, _, _)| n.starts_with("decode") || n.starts_with("parse"))
            .flat_map(|(_, lo, hi)| lo..=hi)
            .collect()
    } else {
        BTreeSet::new()
    };
    for (i, t) in cx.toks.iter().enumerate() {
        let Some(id) = t.ident() else {
            // `x[…]`, `arr[…]`, `f()[…]`, `s.field[…]` — previous token
            // ident, `]` or `)` followed by `[`.
            if t.is_punct("[") && decode_lines.contains(&t.line) {
                let prev = i.checked_sub(1).and_then(|p| cx.toks.get(p));
                let indexes = prev.is_some_and(|p| p.ident().is_some() || p.is_punct("]") || p.is_punct(")"));
                if indexes {
                    cx.emit(
                        out,
                        t.line,
                        "rx_panic",
                        "unchecked indexing in a wire decoder: use ByteReader / get()".into(),
                    );
                }
            }
            continue;
        };
        if !in_scope(t.line) {
            continue;
        }
        let next = cx.toks.get(i + 1);
        let prev = i.checked_sub(1).and_then(|p| cx.toks.get(p));
        let method_call = prev.is_some_and(|p| p.is_punct("."))
            && next.is_some_and(|n| n.is_punct("(") || n.is_punct("::"));
        if (id == "unwrap" || id == "expect") && method_call {
            cx.emit(
                out,
                t.line,
                "rx_panic",
                format!("`.{id}()` on the packet-input path: malformed input must be an Err"),
            );
        }
        if matches!(id, "panic" | "unreachable" | "todo" | "unimplemented")
            && next.is_some_and(|n| n.is_punct("!"))
        {
            cx.emit(
                out,
                t.line,
                "rx_panic",
                format!("`{id}!` on the packet-input path: return an error instead"),
            );
        }
    }
}

fn lint_tcb_write(cx: &FileCtx, out: &mut Vec<Violation>) {
    let Some(k) = cx.krate else { return };
    if !TRACE_CRATES.contains(&k) || TCB_WHITELIST.contains(&cx.rel) {
        return;
    }
    const ASSIGN: &[&str] = &["=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>="];
    for w in cx.toks.windows(3) {
        let [dot, field, op] = w else { continue };
        if dot.is_punct(".")
            && field.ident().is_some_and(|f| TCB_FIELDS.contains(&f))
            && op.punct().is_some_and(|o| ASSIGN.contains(&o))
        {
            cx.emit(
                out,
                field.line,
                "tcb_write",
                format!(
                    "TCB field `{}` written outside the engine whitelist: go through the engine API",
                    field.ident().unwrap_or(""),
                ),
            );
        }
    }
}

fn lint_cc_write(cx: &FileCtx, out: &mut Vec<Violation>) {
    let Some(k) = cx.krate else { return };
    if !TRACE_CRATES.contains(&k) || CC_WHITELIST.contains(&cx.rel) {
        return;
    }
    const ASSIGN: &[&str] = &["=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>="];
    for w in cx.toks.windows(3) {
        let [dot, field, op] = w else { continue };
        if dot.is_punct(".")
            && field.ident().is_some_and(|f| CC_FIELDS.contains(&f))
            && op.punct().is_some_and(|o| ASSIGN.contains(&o))
        {
            cx.emit(
                out,
                field.line,
                "cc_write",
                format!(
                    "congestion field `{}` written outside crates/foxtcp/src/congestion.rs: \
                     go through the CongestionControl trait",
                    field.ident().unwrap_or(""),
                ),
            );
        }
    }
}

fn lint_ctrl_data(cx: &FileCtx, out: &mut Vec<Violation>) {
    // The split is internal to foxtcp: other crates (including the
    // monolithic xktcp baseline, which exists to *not* have this
    // structure) are out of scope.
    if !cx.rel.starts_with("crates/foxtcp/src/") {
        return;
    }
    const ASSIGN: &[&str] = &["=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>="];
    let in_control = cx.rel.starts_with(CONTROL_PREFIX);
    let in_data = cx.rel.starts_with(DATA_PREFIX) || cx.rel == "crates/foxtcp/src/tcb.rs";
    for w in cx.toks.windows(3) {
        let [dot, field, op] = w else { continue };
        if !dot.is_punct(".") || !op.punct().is_some_and(|o| ASSIGN.contains(&o)) {
            continue;
        }
        let Some(f) = field.ident() else { continue };
        if f == "state" && !in_control {
            cx.emit(
                out,
                field.line,
                "ctrl_data",
                "state transition outside crates/foxtcp/src/control/: the data path reports \
                 events (DataEvent), it never assigns `state`"
                    .into(),
            );
        }
        if (TCB_FIELDS.contains(&f) || CC_FIELDS.contains(&f)) && !in_data {
            cx.emit(
                out,
                field.line,
                "ctrl_data",
                format!(
                    "data-path field `{f}` written outside crates/foxtcp/src/data/: control \
                     reaches the transfer machinery only through its explicit interface"
                ),
            );
        }
    }
}

/// Idents that name a window quantity. The check is lexical, so it keys
/// on the naming convention the codebase already follows.
fn is_window_name(id: &str) -> bool {
    id.contains("wnd") || id.to_ascii_lowercase().contains("window")
}

fn lint_win_cast(cx: &FileCtx, out: &mut Vec<Violation>) {
    let Some(k) = cx.krate else { return };
    // The wire codec owns the one sanctioned narrowing (`wire_window`);
    // everywhere else a bare `as u16` silently reintroduces the 64 KB cap.
    if !TRACE_CRATES.contains(&k) {
        return;
    }
    for (i, t) in cx.toks.iter().enumerate() {
        if !t.is_ident("as") || !cx.toks.get(i + 1).is_some_and(|n| n.is_ident("u16")) {
            continue;
        }
        // Scan back through the statement for a window-named operand
        // (assignment target or cast source); statement boundaries keep
        // unrelated casts out of scope.
        let windowish = cx.toks[..i]
            .iter()
            .rev()
            .take(24)
            .take_while(|b| !b.is_punct(";") && !b.is_punct("{") && !b.is_punct("}"))
            .any(|b| b.ident().is_some_and(is_window_name));
        if windowish {
            cx.emit(
                out,
                t.line,
                "win_cast",
                "raw `as u16` on a window value: use foxwire::tcp::wire_window".into(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// shard_ready family: the static shard-confinement proof
// ---------------------------------------------------------------------
//
// ROADMAP item 2 wants the engine sharded by hashing 4-tuples onto W
// workers. That is only sound if (1) no trace-affecting crate keeps
// process-global mutable state a shard could race on, (2) no `Rc` to
// TCB/engine state escapes foxtcp's public surface (an `Rc` crossing a
// shard boundary is a data race the type system cannot see once shards
// run on threads), and (3) every TCB access routes through the
// demux-owning engine modules. These three lints are that proof.

fn lint_shard_global(cx: &FileCtx, out: &mut Vec<Violation>) {
    let Some(k) = cx.krate else { return };
    if !TRACE_CRATES.contains(&k) {
        return;
    }
    for (i, t) in cx.toks.iter().enumerate() {
        if t.is_ident("static") && cx.toks.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            cx.emit(
                out,
                t.line,
                "shard_global",
                "`static mut` in a trace-affecting crate: shards would race on it — move the \
                 state into the engine (per-shard) or behind an explicit channel"
                    .into(),
            );
        }
        if t.is_ident("thread_local") && cx.toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            cx.emit(
                out,
                t.line,
                "shard_global",
                "`thread_local!` in a trace-affecting crate: per-thread state silently diverges \
                 across shards — make it per-engine, or allow with a reason why it cannot \
                 affect traces"
                    .into(),
            );
        }
    }
}

/// Scans a `pub` item signature for an `Rc` mention. The signature runs
/// from the token after `pub` to the first `;`, `{`, `}` or `,` at
/// paren/bracket depth zero — a field ends at its comma, a fn at its
/// body brace, a type alias at its semicolon. (Commas inside a generic
/// parameter list are not depth-tracked; a signature like
/// `pub fn f<A, B>() -> Rc<T>` ends the scan early. The codebase does
/// not use that shape for shared state, and a missed site still fails
/// the runtime coverage ratchet it would break.)
fn lint_shard_rc(cx: &FileCtx, out: &mut Vec<Violation>) {
    if !cx.rel.starts_with("crates/foxtcp/src/") {
        return;
    }
    let toks = cx.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("pub") {
            i += 1;
            continue;
        }
        // `pub(crate)` / `pub(super)` never escape the crate.
        if toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            i += 1;
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].punct() {
                Some("(") | Some("[") => depth += 1,
                Some(")") | Some("]") => depth -= 1,
                Some(";") | Some("{") | Some("}") | Some(",") if depth == 0 => break,
                _ => {}
            }
            if toks[j].is_ident("Rc") {
                cx.emit(
                    out,
                    toks[j].line,
                    "shard_rc",
                    "`Rc` in a crate-public foxtcp signature: a shared handle crossing the crate \
                     boundary cannot be confined to one shard — make it pub(crate) or expose a \
                     method instead"
                        .into(),
                );
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// Files allowed to touch `.tcb` directly: the TCB itself and the
/// engine that owns the demux table. `control/` and `data/` are the
/// engine's own halves (scoped further by `ctrl_data`).
const TCB_ROUTE_FILES: &[&str] = &["crates/foxtcp/src/tcb.rs", "crates/foxtcp/src/engine.rs"];

fn lint_shard_tcb(cx: &FileCtx, out: &mut Vec<Violation>) {
    let Some(k) = cx.krate else { return };
    if !TRACE_CRATES.contains(&k) {
        return;
    }
    if cx.rel.starts_with(CONTROL_PREFIX)
        || cx.rel.starts_with(DATA_PREFIX)
        || TCB_ROUTE_FILES.contains(&cx.rel)
    {
        return;
    }
    for w in cx.toks.windows(2) {
        let [dot, field] = w else { continue };
        if dot.is_punct(".") && field.is_ident("tcb") {
            cx.emit(
                out,
                field.line,
                "shard_tcb",
                "direct `.tcb` access outside the engine modules: per-connection state is \
                 reachable only through the demux-owning engine — use the engine API"
                    .into(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Per-file driver
// ---------------------------------------------------------------------

/// Lints one file's source. `rel` is the workspace-relative path with
/// forward slashes (it selects each lint's scope). Returns the surviving
/// violations and how many were suppressed by valid allow directives.
pub fn lint_source(rel: &str, src: &str) -> (Vec<Violation>, usize) {
    let (toks, allows) = lex(src);
    let excluded = test_lines(&toks);
    let krate = rel.strip_prefix("crates/").and_then(|r| r.split('/').next());
    let cx = FileCtx { rel, krate, toks: &toks, excluded: &excluded };
    let mut raw = Vec::new();
    lint_determinism(&cx, &mut raw);
    lint_hash_iter(&cx, &mut raw);
    lint_rx_panic(&cx, &mut raw);
    lint_tcb_write(&cx, &mut raw);
    lint_cc_write(&cx, &mut raw);
    lint_win_cast(&cx, &mut raw);
    lint_ctrl_data(&cx, &mut raw);
    lint_shard_global(&cx, &mut raw);
    lint_shard_rc(&cx, &mut raw);
    lint_shard_tcb(&cx, &mut raw);
    // Apply allow directives: a valid allow suppresses matching
    // violations on its own line and the following line. A malformed
    // directive is itself a violation — the escape hatch must not decay.
    let mut out = Vec::new();
    let mut allowed = 0usize;
    for a in &allows {
        if let Some(err) = &a.error {
            out.push(Violation {
                path: rel.to_string(),
                line: a.line,
                lint: "directive",
                message: err.clone(),
            });
        }
    }
    for v in raw {
        let hit = allows
            .iter()
            .any(|a| a.error.is_none() && a.lint == v.lint && (a.line == v.line || a.line + 1 == v.line));
        if hit {
            allowed += 1;
        } else {
            out.push(v);
        }
    }
    out.sort();
    (out, allowed)
}

// ---------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------

fn push_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    // read_dir order is OS-dependent: sort for a deterministic report.
    let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            push_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// All workspace `.rs` source files under `root`: the facade `src/` and
/// every `crates/*/src/`. Integration tests, benches, fixtures and
/// `vendor/` are intentionally out of scope.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    push_rs_files(&root.join("src"), &mut out);
    let crates_dir = root.join("crates");
    if let Ok(rd) = fs::read_dir(&crates_dir) {
        let mut members: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
        members.sort();
        for m in members {
            push_rs_files(&m.join("src"), &mut out);
        }
    }
    out
}

/// Outcome of linting a whole workspace.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// All surviving violations, sorted.
    pub violations: Vec<Violation>,
    /// Count suppressed by valid allow directives.
    pub allowed: usize,
    /// Files scanned.
    pub files: usize,
}

/// Lints every workspace file under `root`.
pub fn check_root(root: &Path) -> CheckOutcome {
    let mut out = CheckOutcome::default();
    for path in workspace_files(root) {
        let Ok(src) = fs::read_to_string(&path) else { continue };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let (vs, allowed) = lint_source(&rel, &src);
        out.violations.extend(vs);
        out.allowed += allowed;
        out.files += 1;
    }
    out.violations.sort();
    out
}

// ---------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------

/// Per-`(lint, path)` violation counts.
pub type Counts = BTreeMap<(String, String), usize>;

/// Groups violations by `(lint, path)`.
pub fn count(violations: &[Violation]) -> Counts {
    let mut c = Counts::new();
    for v in violations {
        *c.entry((v.lint.to_string(), v.path.clone())).or_insert(0) += 1;
    }
    c
}

/// Reads a baseline file (`lint<TAB>path<TAB>count` lines; `#` comments).
pub fn load_baseline(path: &Path) -> Result<Counts, String> {
    let mut c = Counts::new();
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(c),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(lint), Some(p), Some(n)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("{}:{}: malformed baseline line", path.display(), i + 1));
        };
        let n: usize = n.parse().map_err(|_| format!("{}:{}: bad count `{n}`", path.display(), i + 1))?;
        c.insert((lint.to_string(), p.to_string()), n);
    }
    Ok(c)
}

/// Serializes counts back to the baseline format.
pub fn render_baseline(c: &Counts) -> String {
    let mut s = String::from(
        "# foxlint baseline: known violations, one `lint<TAB>path<TAB>count` per line.\n\
         # New violations fail the build; fixing one makes its entry stale, which\n\
         # also fails — regenerate with `cargo run -p foxlint -- --update-baseline`.\n",
    );
    for ((lint, path), n) in c {
        s.push_str(&format!("{lint}\t{path}\t{n}\n"));
    }
    s
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes violations as a JSON array of
/// `{"file":…,"line":…,"lint":…,"message":…}` records (deterministic
/// key and record order), for `foxlint --format json`.
pub fn render_json(violations: &[Violation]) -> String {
    let mut s = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"file\":\"{}\",\"line\":{},\"lint\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&v.path),
            v.line,
            json_escape(v.lint),
            json_escape(&v.message),
        ));
    }
    if !violations.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

/// The ratchet: how current counts compare to the baseline.
#[derive(Debug, Default)]
pub struct Drift {
    /// `(lint, path, current, baseline)` where current > baseline.
    pub grown: Vec<(String, String, usize, usize)>,
    /// `(lint, path, current, baseline)` where current < baseline.
    pub stale: Vec<(String, String, usize, usize)>,
}

impl Drift {
    /// No drift in either direction?
    pub fn is_clean(&self) -> bool {
        self.grown.is_empty() && self.stale.is_empty()
    }
}

/// Compares current counts against the baseline in both directions.
pub fn compare(current: &Counts, baseline: &Counts) -> Drift {
    let mut d = Drift::default();
    let keys: BTreeSet<_> = current.keys().chain(baseline.keys()).collect();
    for k in keys {
        let cur = current.get(k).copied().unwrap_or(0);
        let base = baseline.get(k).copied().unwrap_or(0);
        if cur > base {
            d.grown.push((k.0.clone(), k.1.clone(), cur, base));
        } else if cur < base {
            d.stale.push((k.0.clone(), k.1.clone(), cur, base));
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_skips_strings_comments_and_lifetimes() {
        let src = r####"
            // HashMap in a comment
            /* Instant in /* a nested */ block */
            fn f<'a>(x: &'a str) -> char {
                let _s = "HashMap<Instant>";
                let _r = r#"SystemTime"#;
                let _b = b"thread_rng";
                let _c = '\'';
                'x'
            }
        "####;
        let (toks, _) = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(!toks.iter().any(|t| t.is_ident("Instant")));
        assert!(!toks.iter().any(|t| t.is_ident("SystemTime")));
        assert!(!toks.iter().any(|t| t.is_ident("thread_rng")));
        assert!(toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn allow_directive_parses_and_rejects() {
        let ok = parse_allow(" foxlint::allow(determinism): bench-only warmup", 3).unwrap();
        assert!(ok.error.is_none());
        assert_eq!(ok.lint, "determinism");
        let bad = parse_allow(" foxlint::allow(nosuch): reason", 3).unwrap();
        assert!(bad.error.is_some());
        let noreason = parse_allow(" foxlint::allow(rx_panic):", 3).unwrap();
        assert!(noreason.error.is_some());
        assert!(parse_allow("ordinary comment", 1).is_none());
    }

    #[test]
    fn test_regions_are_excluded() {
        let src = "
            fn live() {}
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                fn t() { let m: HashMap<u8, u8> = HashMap::new(); }
            }
        ";
        let (vs, _) = lint_source("crates/foxtcp/src/x.rs", src);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn fn_regions_find_nested_fns() {
        let src = "fn outer() { fn inner() {} }";
        let (toks, _) = lex(src);
        let names: Vec<_> = fn_regions(&toks).into_iter().map(|(n, _, _)| n).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn cc_write_fenced_to_congestion_module() {
        let src = "fn f(t: &mut Tcb<u8>) { t.cwnd = 1; t.ssthresh += 2; }";
        let (vs, _) = lint_source("crates/foxtcp/src/data/resend.rs", src);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs.iter().all(|v| v.lint == "cc_write"));
        // The congestion module itself is the whitelist.
        let (vs, _) = lint_source("crates/foxtcp/src/data/congestion.rs", src);
        assert!(vs.is_empty(), "{vs:?}");
        // Non-trace crates are out of scope.
        let (vs, _) = lint_source("crates/bench/src/x.rs", src);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn ctrl_data_separates_the_halves() {
        // A state transition is control's alone: fine under control/,
        // flagged in the data path and in the engine root.
        let transition = "fn f(c: &mut Core) { c.state = 1; }";
        let (vs, _) = lint_source("crates/foxtcp/src/control/state.rs", transition);
        assert!(vs.is_empty(), "{vs:?}");
        let (vs, _) = lint_source("crates/foxtcp/src/data/send.rs", transition);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].lint, "ctrl_data");
        let (vs, _) = lint_source("crates/foxtcp/src/engine.rs", transition);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].lint, "ctrl_data");
        // Sequence-space writes are data's alone: control gets flagged
        // (tcb_write agrees, since control/ is not whitelisted either).
        let seqwrite = "fn g(c: &mut Core) { c.rcv_nxt += 1; }";
        let (vs, _) = lint_source("crates/foxtcp/src/control/segment.rs", seqwrite);
        let lints: Vec<_> = vs.iter().map(|v| v.lint).collect();
        assert_eq!(lints, vec!["ctrl_data", "tcb_write"], "{vs:?}");
        let (vs, _) = lint_source("crates/foxtcp/src/data/transfer.rs", seqwrite);
        assert!(vs.is_empty(), "{vs:?}");
        // The TCB's own methods may touch its fields.
        let (vs, _) = lint_source("crates/foxtcp/src/tcb.rs", seqwrite);
        assert!(vs.is_empty(), "{vs:?}");
        // The monolithic baseline is deliberately unsplit: out of scope.
        let (vs, _) = lint_source("crates/xktcp/src/lib.rs", transition);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn win_cast_flags_window_narrowing_outside_wire() {
        let src = "fn f(w: u32) -> u16 { let snd_wnd = w; snd_wnd.min(65535) as u16 }";
        let (vs, _) = lint_source("crates/foxtcp/src/send.rs", src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].lint, "win_cast");
        // crates/wire is not a trace crate: the codec owns the narrowing.
        let (vs, _) = lint_source("crates/wire/src/tcp.rs", src);
        assert!(vs.iter().all(|v| v.lint != "win_cast"), "{vs:?}");
        // Unrelated u16 casts don't trip it.
        let src = "fn g(port: u32) -> u16 { port as u16 }";
        let (vs, _) = lint_source("crates/foxtcp/src/send.rs", src);
        assert!(vs.is_empty(), "{vs:?}");
        // Statement boundaries reset the lookback.
        let src = "fn h(window: u32, p: u32) -> u16 { let _w = window; p as u16 }";
        let (vs, _) = lint_source("crates/xktcp/src/lib.rs", src);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn baseline_roundtrip_and_drift() {
        let mut base = Counts::new();
        base.insert(("rx_panic".into(), "a.rs".into()), 2);
        let text = render_baseline(&base);
        let dir = std::env::temp_dir().join("foxlint-test-baseline");
        fs::write(&dir, &text).unwrap();
        let loaded = load_baseline(&dir).unwrap();
        assert_eq!(loaded, base);
        let mut cur = Counts::new();
        cur.insert(("rx_panic".into(), "a.rs".into()), 3);
        cur.insert(("hash_iter".into(), "b.rs".into()), 1);
        let d = compare(&cur, &base);
        assert_eq!(d.grown.len(), 2);
        assert!(d.stale.is_empty());
        let d2 = compare(&Counts::new(), &base);
        assert_eq!(d2.stale.len(), 1);
        fs::remove_file(&dir).ok();
    }
}
