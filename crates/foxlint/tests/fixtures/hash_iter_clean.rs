// Fixture: ordered containers — must not fire `hash_iter`.
use std::collections::BTreeMap;

pub struct Table {
    flows: BTreeMap<u32, u32>,
}

impl Table {
    pub fn total(&self) -> u32 {
        self.flows.values().sum()
    }
}
