// Fixture: reading TCB fields and comparing them is fine anywhere —
// only assignment is contained. Struct-literal construction uses `:`,
// not `=`, and is likewise not a write through the API boundary.
pub fn observe(tcb: &Tcb) -> bool {
    tcb.snd_una == tcb.snd_nxt && tcb.cwnd >= tcb.ssthresh
}
