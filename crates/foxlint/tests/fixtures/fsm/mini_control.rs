//! A control/-shaped fixture with a known transition graph, exercising
//! every extraction rule: early-return narrowing on state and flag
//! guards, state matches with `|` patterns and payload skipping,
//! `is_syn_received`/`is_synchronized` atoms, interprocedural context
//! expansion, and the segment-flag trigger precedence.
//!
//! Expected graph (24 edges, RFC names):
//!   open : CLOSED -> SYN-SENT
//!   close: SYN-SENT -> CLOSED, ESTABLISHED -> FIN-WAIT-1
//!   rst  : {SYN-RECEIVED, ESTABLISHED, FIN-WAIT-1, FIN-WAIT-2,
//!           CLOSE-WAIT, CLOSING, LAST-ACK, TIME-WAIT} -> CLOSED
//!   syn  : SYN-SENT -> ESTABLISHED
//!   ack  : SYN-RECEIVED -> ESTABLISHED, FIN-WAIT-1 -> FIN-WAIT-2
//!   timer: every non-CLOSED state -> CLOSED

pub fn active_open(core: &mut Core) -> Result<(), Error> {
    if core.state != TcpState::Closed {
        return Err(Error::AlreadyOpen);
    }
    core.state = TcpState::SynSent { retries_left: 3 };
    Ok(())
}

pub fn close(core: &mut Core) {
    match core.state.clone() {
        TcpState::SynSent { .. } => {
            core.state = TcpState::Closed;
        }
        TcpState::Estab => core.state = TcpState::FinWait1 { fin_acked: false },
        _ => {}
    }
}

pub fn segment_arrives(core: &mut Core, seg: &Seg) {
    if seg.header.flags.rst {
        handle_rst(core);
        return;
    }
    if seg.header.flags.syn {
        if core.state == TcpState::SynSent {
            core.state = TcpState::Estab;
        }
        return;
    }
    if !seg.header.flags.ack {
        return;
    }
    if core.state.is_syn_received() {
        core.state = TcpState::Estab;
        return;
    }
    match core.state {
        TcpState::FinWait1 { .. } => core.state = TcpState::FinWait2,
        _ => {}
    }
}

fn handle_rst(core: &mut Core) {
    if core.state.is_synchronized() {
        core.state = TcpState::Closed;
    }
}

pub fn timer_expired(core: &mut Core) {
    if core.state == TcpState::Closed {
        return;
    }
    give_up(core);
}

fn give_up(core: &mut Core) {
    core.state = TcpState::Closed;
}
