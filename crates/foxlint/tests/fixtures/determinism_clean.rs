// Fixture: virtual time and seeded randomness — must not fire
// `determinism`. Mentions of banned names in comments (Instant,
// SystemTime, thread_rng) and strings must be ignored by the lexer.
pub fn stamp(now: VirtualTime, rng: &mut StdRng) -> u64 {
    let _banned_in_string = "Instant::now() SystemTime thread_rng";
    now.as_ticks() ^ rng.next_u64()
}
