// Fixture: ambient time and randomness — every marked line must fire
// the `determinism` lint when scanned as a non-bench crate file.
use std::time::Instant; //~ determinism
use std::time::SystemTime; //~ determinism

pub fn stamp() -> u128 {
    let t = Instant::now(); //~ determinism
    let _ = SystemTime::now(); //~ determinism
    let mut rng = rand::thread_rng(); //~ determinism
    let _h = std::collections::hash_map::RandomState::new(); //~ determinism
    t.elapsed().as_nanos()
}
