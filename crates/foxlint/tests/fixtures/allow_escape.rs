// Fixture: the per-site escape hatch. A valid allow with a reason
// suppresses the same or next line; a bad directive is itself an error.
use std::collections::HashMap; // foxlint::allow(hash_iter): lookup-only cache, never iterated

pub struct Cache {
    // foxlint::allow(hash_iter): keyed by opaque token, iteration never observed
    inner: HashMap<u64, u64>,
}

// foxlint::allow(nosuch_lint): this directive is malformed //~ directive
pub fn noop() {}
