//! No-fire side of the byte-string pair: lint-named tokens inside every
//! byte-string shape must not be misclassified as code.

pub fn shapes() -> usize {
    let plain = b"Instant SystemTime thread_rng";
    let escaped = b"HashMap \"Instant\" \\";
    let raw = br"RandomState \ no escapes";
    let hashed = br#"DefaultHasher "quoted" inner"#;
    let double = br##"Instant "# still inside"##;
    let multiline = b"Instant
        SystemTime";
    let continued = b"thread_rng\
        HashMap";
    let ch = b'"';
    plain.len()
        + escaped.len()
        + raw.len()
        + hashed.len()
        + double.len()
        + multiline.len()
        + continued.len()
        + ch as usize
}
