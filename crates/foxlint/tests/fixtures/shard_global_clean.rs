//! No-fire side: immutable statics and engine-owned state are fine, and
//! the allow escape hatch covers a justified thread_local.

static GREETING: &str = "hello";
pub static LIMITS: [u32; 2] = [1, 2];

pub struct Engine {
    packets_seen: u64,
}

impl Engine {
    pub fn bump(&mut self) {
        self.packets_seen += 1;
    }
}

// foxlint::allow(shard_global): diagnostic counter, never read by trace-affecting code
thread_local! {
    static DIAG: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

pub fn greet() -> &'static str {
    GREETING
}
