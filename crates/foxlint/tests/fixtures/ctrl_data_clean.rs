//! `ctrl_data` no-fire fixture: reads and comparisons of both halves'
//! fields are fine anywhere in foxtcp — only assignment crosses the
//! boundary.

pub struct Core {
    pub state: u8,
    pub snd_nxt: u32,
    pub cwnd: u32,
}

pub fn observe(core: &Core) -> bool {
    core.state == 1 && core.snd_nxt > 2 && core.cwnd != 0
}

pub fn snapshot(core: &Core) -> (u8, u32) {
    (core.state, core.snd_nxt.min(core.cwnd))
}
