// Fixture: `#[cfg(test)]` regions and `#[test]` fns are exempt from all
// lints — unwraps and hash maps in tests are idiomatic.
pub fn live() -> u8 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn uses_all_the_banned_things() {
        let mut m: HashMap<u8, u8> = HashMap::new();
        m.insert(1, 2);
        for (_k, v) in m.iter() {
            assert_eq!(*v, 2);
        }
        let _ = m.get(&1).unwrap();
    }
}
