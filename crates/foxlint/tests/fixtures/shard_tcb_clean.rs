//! No-fire side: state is observed through the engine API; a local
//! named `tcb` without field access is not a TCB reach-through.

pub fn peek(engine: &mut Engine, conn: ConnId) -> u32 {
    let tcb = engine.window_of(conn);
    tcb
}
