//! Fire side: `Rc` handles to shared state escaping foxtcp's public
//! surface — a type alias, a return type, and a public field.

pub type Handle = Rc<RefCell<Engine>>;

pub struct Conn {
    pub queue: Rc<RefCell<Fifo>>,
}

impl Conn {
    pub fn share(&self) -> Rc<RefCell<Fifo>> {
        self.queue.clone()
    }
}
