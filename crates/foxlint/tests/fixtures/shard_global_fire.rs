//! Fire side: process-global mutable state a shard would race on.

static mut PACKETS_SEEN: u64 = 0;

thread_local! {
    static SCRATCH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

pub fn bump() {
    unsafe {
        PACKETS_SEEN += 1;
    }
    SCRATCH.with(|s| s.set(s.get() + 1));
}
