//! Fire side: reaching into a connection's TCB from outside the engine
//! modules instead of going through the demuxed engine API.

pub fn peek(conns: &mut [Conn]) -> u32 {
    let c = &mut conns[0];
    c.core.tcb.snd_nxt = c.core.tcb.snd_una;
    c.core.tcb.rcv_wnd()
}
