//! Fire side of the byte-string lexer pair: the byte strings below use
//! `\`-newline continuations, which the lexer must count as real lines.
//! The banned ident after them must be reported at its true line — if
//! the lexer drops continuation newlines, the line drifts and the
//! paired test fails.

pub fn banner() -> (&'static [u8], &'static [u8]) {
    let a = b"first\
        second\
        third";
    let b = b"lone\
        tail";
    (a, b)
}

pub fn stamp() -> u64 {
    // line 18: the fixture test pins this exact line number.
    Instant::now().elapsed().as_micros() as u64
}
