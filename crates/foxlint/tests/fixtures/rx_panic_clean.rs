// Fixture: total decoder — must not fire `rx_panic`. Checked access
// only; `unwrap_or` / slice patterns are fine; encode functions may
// index buffers they just built.
pub fn decode(buf: &[u8]) -> Option<u16> {
    match buf.get(0..2) {
        Some(&[hi, lo]) => Some(u16::from_be_bytes([hi, lo])),
        _ => None,
    }
}

pub fn encode(v: u16) -> Vec<u8> {
    let mut out = vec![0u8; 2];
    out[0] = (v >> 8) as u8;
    out[1] = v as u8;
    out
}
