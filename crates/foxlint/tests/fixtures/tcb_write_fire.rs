// Fixture: TCB state written outside the engine whitelist — scanned as
// a harness file (a trace crate not on the whitelist).
pub fn meddle(tcb: &mut Tcb) {
    tcb.snd_nxt = tcb.snd_nxt + 1; //~ tcb_write
    tcb.cwnd += 1460; //~ tcb_write
    tcb.ssthresh = 4096; //~ tcb_write
}
