// Fixture: panics and unchecked indexing on the packet-input path —
// scanned as a `crates/wire/src/` file, where decode*/parse* functions
// additionally forbid indexing.
pub fn decode(buf: &[u8]) -> u16 {
    let first = buf[0]; //~ rx_panic (unchecked indexing in decoder)
    let second = *buf.get(1).unwrap(); //~ rx_panic (unwrap)
    if first == 0xff {
        unreachable!("checked above"); //~ rx_panic (unreachable!)
    }
    let _third = buf.get(2).expect("short"); //~ rx_panic (expect)
    u16::from(first) << 8 | u16::from(second)
}
