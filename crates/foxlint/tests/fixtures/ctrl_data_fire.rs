//! `ctrl_data` fire fixture: one file that writes both halves' fields.
//! Linted under the foxtcp engine root it trips all three writes; under
//! `control/` only the data-path writes fire; under `data/` only the
//! state transition does.

pub struct Core {
    pub state: u8,
    pub snd_nxt: u32,
    pub cwnd: u32,
}

pub fn mixed(core: &mut Core) {
    core.state = 1;
    core.snd_nxt += 2;
    core.cwnd = 3;
}
