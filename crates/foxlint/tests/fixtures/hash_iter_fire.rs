// Fixture: hash containers in a trace-affecting crate — the type
// mentions fire, and iteration over a declared hash container fires.
use std::collections::HashMap; //~ hash_iter

pub struct Table {
    flows: HashMap<u32, u32>, //~ hash_iter
}

impl Table {
    pub fn total(&self) -> u32 {
        let mut sum = 0;
        for (_k, v) in self.flows.iter() {
            //~^ hash_iter (iteration over hash container)
            sum += v;
        }
        sum
    }
}
