//! No-fire side: crate-private `Rc` is fine (it cannot cross a shard
//! boundary), and `Rc` inside a public fn's *body* is not a signature.

pub(crate) type Handle = Rc<RefCell<Engine>>;

pub struct Conn {
    queue: Rc<RefCell<Fifo>>,
    pub(crate) spare: Rc<RefCell<Fifo>>,
}

impl Conn {
    pub fn depth(&self) -> usize {
        let q: Rc<RefCell<Fifo>> = self.queue.clone();
        q.borrow().len()
    }
}
