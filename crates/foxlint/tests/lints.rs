//! Fixture corpus: one fire / no-fire pair per lint, plus the allow
//! escape hatch and the `#[cfg(test)]` exemption. Each fixture is
//! linted under a synthetic workspace-relative path that puts it in the
//! lint's scope.

use std::fs;
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    fs::read_to_string(&p).unwrap_or_else(|e| panic!("{}: {e}", p.display()))
}

/// Lints a fixture as if it lived at `rel` in the workspace.
fn run(name: &str, rel: &str) -> (Vec<foxlint::Violation>, usize) {
    foxlint::lint_source(rel, &fixture(name))
}

fn lints_of(vs: &[foxlint::Violation]) -> Vec<&'static str> {
    vs.iter().map(|v| v.lint).collect()
}

#[test]
fn determinism_fires_on_ambient_time_and_randomness() {
    let (vs, _) = run("determinism_fire.rs", "crates/harness/src/fixture.rs");
    assert_eq!(vs.len(), 6, "{vs:?}");
    assert!(vs.iter().all(|v| v.lint == "determinism"), "{vs:?}");
    // The `use` line and each call site are reported individually.
    let lines: Vec<usize> = vs.iter().map(|v| v.line).collect();
    assert_eq!(lines, {
        let mut l = lines.clone();
        l.sort();
        l
    });
}

#[test]
fn determinism_is_silent_on_virtual_clock_and_in_bench() {
    let (vs, _) = run("determinism_clean.rs", "crates/harness/src/fixture.rs");
    assert!(vs.is_empty(), "{vs:?}");
    // The same ambient-time fixture is fine inside crates/bench.
    let (vs, _) = run("determinism_fire.rs", "crates/bench/src/fixture.rs");
    assert!(vs.is_empty(), "bench is exempt: {vs:?}");
}

#[test]
fn hash_iter_fires_on_types_and_iteration() {
    let (vs, _) = run("hash_iter_fire.rs", "crates/foxtcp/src/fixture.rs");
    assert!(vs.iter().all(|v| v.lint == "hash_iter"), "{vs:?}");
    // Two type mentions (use + field) and one iteration call.
    assert_eq!(vs.len(), 3, "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("iteration")), "{vs:?}");
}

#[test]
fn hash_iter_is_silent_on_btree_and_out_of_scope_crates() {
    let (vs, _) = run("hash_iter_clean.rs", "crates/foxtcp/src/fixture.rs");
    assert!(vs.is_empty(), "{vs:?}");
    // The wire crate is not trace-affecting: hash containers allowed.
    let (vs, _) = run("hash_iter_fire.rs", "crates/wire/src/fixture.rs");
    assert!(vs.is_empty(), "wire is out of hash_iter scope: {vs:?}");
}

#[test]
fn rx_panic_fires_in_wire_decoders() {
    let (vs, _) = run("rx_panic_fire.rs", "crates/wire/src/fixture.rs");
    assert_eq!(lints_of(&vs), vec!["rx_panic"; 4], "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("indexing")), "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("unwrap")), "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("unreachable")), "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("expect")), "{vs:?}");
}

#[test]
fn rx_panic_is_silent_on_total_decoders_and_outside_scope() {
    let (vs, _) = run("rx_panic_clean.rs", "crates/wire/src/fixture.rs");
    assert!(vs.is_empty(), "{vs:?}");
    // The same panicky fixture is out of scope in, say, the scheduler.
    let (vs, _) = run("rx_panic_fire.rs", "crates/scheduler/src/fixture.rs");
    assert!(vs.is_empty(), "scheduler is out of rx_panic scope: {vs:?}");
}

#[test]
fn rx_panic_scopes_engine_files_by_function() {
    // In engine.rs only `internalize` is the rx path: a panic inside it
    // fires, the same panic in another fn does not.
    let src = "
        impl Engine {
            fn internalize(&mut self, buf: &[u8]) {
                let _ = buf.first().unwrap();
            }
            fn open(&mut self) {
                let _ = self.conns.first().unwrap();
            }
        }
    ";
    let (vs, _) = foxlint::lint_source("crates/foxtcp/src/engine.rs", src);
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].lint, "rx_panic");
    let (toks_line, _) = (vs[0].line, ());
    assert_eq!(toks_line, 4, "violation should be inside internalize: {vs:?}");
}

#[test]
fn tcb_write_fires_outside_whitelist_only() {
    // The fixture writes snd_nxt (tcb_write's turf) and cwnd/ssthresh
    // (cc_write's turf, fenced more tightly).
    let (vs, _) = run("tcb_write_fire.rs", "crates/harness/src/fixture.rs");
    assert_eq!(lints_of(&vs), vec!["tcb_write", "cc_write", "cc_write"], "{vs:?}");
    // Inside a whitelisted data module the sequence-space write is
    // fine, but the congestion writes still belong to congestion.rs.
    let (vs, _) = run("tcb_write_fire.rs", "crates/foxtcp/src/data/send.rs");
    assert_eq!(lints_of(&vs), vec!["cc_write", "cc_write"], "{vs:?}");
    let (vs, _) = run("tcb_write_fire.rs", "crates/xktcp/src/lib.rs");
    assert_eq!(lints_of(&vs), vec!["cc_write", "cc_write"], "{vs:?}");
    // congestion.rs may write the windows but not sequence space.
    let (vs, _) = run("tcb_write_fire.rs", "crates/foxtcp/src/data/congestion.rs");
    assert_eq!(lints_of(&vs), vec!["tcb_write"], "{vs:?}");
}

#[test]
fn ctrl_data_fires_on_cross_boundary_writes() {
    // In the engine root neither half's fields may be assigned: the
    // state transition and both data-path writes fire (the data-path
    // writes also trip their dedicated lints, which stay in agreement).
    let (vs, _) = run("ctrl_data_fire.rs", "crates/foxtcp/src/fixture.rs");
    let ctrl: Vec<_> = vs.iter().filter(|v| v.lint == "ctrl_data").collect();
    assert_eq!(ctrl.len(), 3, "{vs:?}");
    // Under control/ the state transition is legal; the seq/cwnd writes
    // are not.
    let (vs, _) = run("ctrl_data_fire.rs", "crates/foxtcp/src/control/fixture.rs");
    assert_eq!(vs.iter().filter(|v| v.lint == "ctrl_data").count(), 2, "{vs:?}");
    // Under data/ only the state transition fires.
    let (vs, _) = run("ctrl_data_fire.rs", "crates/foxtcp/src/data/fixture.rs");
    assert_eq!(vs.iter().filter(|v| v.lint == "ctrl_data").count(), 1, "{vs:?}");
    assert!(vs.iter().any(|v| v.lint == "ctrl_data" && v.message.contains("state transition")), "{vs:?}");
}

#[test]
fn ctrl_data_is_silent_on_reads_and_outside_foxtcp() {
    let (vs, _) = run("ctrl_data_clean.rs", "crates/foxtcp/src/fixture.rs");
    assert!(vs.is_empty(), "{vs:?}");
    // The split is foxtcp-internal: the monolithic baseline and the
    // harness assign freely (their own lints still apply).
    let (vs, _) = run("ctrl_data_fire.rs", "crates/xktcp/src/lib.rs");
    assert!(vs.iter().all(|v| v.lint != "ctrl_data"), "{vs:?}");
    let (vs, _) = run("ctrl_data_fire.rs", "crates/harness/src/fixture.rs");
    assert!(vs.iter().all(|v| v.lint != "ctrl_data"), "{vs:?}");
}

#[test]
fn tcb_write_is_silent_on_reads() {
    let (vs, _) = run("tcb_write_clean.rs", "crates/harness/src/fixture.rs");
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn allow_directive_suppresses_and_bad_directives_fail() {
    let (vs, allowed) = run("allow_escape.rs", "crates/foxtcp/src/fixture.rs");
    assert_eq!(allowed, 2, "both HashMap mentions suppressed: {vs:?}");
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].lint, "directive");
    assert!(vs[0].message.contains("unknown lint"), "{vs:?}");
}

#[test]
fn cfg_test_regions_are_exempt() {
    let (vs, _) = run("test_mod_exempt.rs", "crates/foxtcp/src/fixture.rs");
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn byte_strings_do_not_leak_lint_tokens() {
    let (vs, _) = run("byte_str_clean.rs", "crates/foxtcp/src/fixture.rs");
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn byte_string_continuations_keep_line_numbers() {
    // The fire fixture's byte strings use `\`-newline continuations;
    // the banned ident after them must be reported at its true line.
    let (vs, _) = run("byte_str_fire.rs", "crates/foxtcp/src/fixture.rs");
    assert_eq!(lints_of(&vs), vec!["determinism"], "{vs:?}");
    assert_eq!(vs[0].line, 18, "line drift across string continuations: {vs:?}");
}

/// Minimal JSON reader for the round-trip test: splits the array into
/// objects and pulls each field, unescaping string values. Fails loudly
/// on anything `render_json` should never produce.
fn parse_findings_json(json: &str) -> Vec<(String, usize, String, String)> {
    let body = json.trim();
    assert!(body.starts_with('[') && body.ends_with(']'), "not an array: {body:?}");
    let mut out = Vec::new();
    let mut rest = &body[1..body.len() - 1];
    while let Some(start) = rest.find('{') {
        let end = start + rest[start..].find('}').expect("unterminated object");
        let obj = &rest[start + 1..end];
        let mut file = None;
        let mut line = None;
        let mut lint = None;
        let mut message = None;
        for (key, val) in split_fields(obj) {
            match key.as_str() {
                "file" => file = Some(val),
                "line" => line = Some(val.parse::<usize>().expect("line is a number")),
                "lint" => lint = Some(val),
                "message" => message = Some(val),
                k => panic!("unexpected key {k:?}"),
            }
        }
        out.push((file.unwrap(), line.unwrap(), lint.unwrap(), message.unwrap()));
        rest = &rest[end + 1..];
    }
    out
}

/// Splits `"k":"v"` / `"k":n` pairs at top level, unescaping strings.
fn split_fields(obj: &str) -> Vec<(String, String)> {
    let mut fields = Vec::new();
    let chars: Vec<char> = obj.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] != '"' {
            i += 1;
            continue;
        }
        let (key, after_key) = read_string(&chars, i);
        assert_eq!(chars[after_key], ':', "key not followed by colon");
        let mut j = after_key + 1;
        let value = if chars[j] == '"' {
            let (v, after) = read_string(&chars, j);
            j = after;
            v
        } else {
            let start = j;
            while j < chars.len() && chars[j].is_ascii_digit() {
                j += 1;
            }
            chars[start..j].iter().collect()
        };
        fields.push((key, value));
        i = j;
    }
    fields
}

/// Reads the JSON string starting at the `"` at `i`; returns (value,
/// index past the closing quote).
fn read_string(chars: &[char], i: usize) -> (String, usize) {
    let mut s = String::new();
    let mut j = i + 1;
    while chars[j] != '"' {
        if chars[j] == '\\' {
            j += 1;
            match chars[j] {
                'n' => s.push('\n'),
                't' => s.push('\t'),
                'r' => s.push('\r'),
                c => s.push(c),
            }
        } else {
            s.push(chars[j]);
        }
        j += 1;
    }
    (s, j + 1)
}

#[test]
fn json_output_parses_and_round_trips_the_text_findings() {
    // A fixture that produces several findings with distinct lints.
    let (vs, _) = run("determinism_fire.rs", "crates/harness/src/fixture.rs");
    assert!(!vs.is_empty());
    let json = foxlint::render_json(&vs);
    let parsed = parse_findings_json(&json);
    assert_eq!(parsed.len(), vs.len());
    // Reconstruct the canonical text rendering from the JSON records.
    let from_json: Vec<String> =
        parsed.iter().map(|(file, line, lint, msg)| format!("{file}:{line}: {lint}: {msg}")).collect();
    let from_text: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
    assert_eq!(from_json, from_text);
}

#[test]
fn json_output_escapes_special_characters() {
    let v = foxlint::Violation {
        path: "a\"b\\c.rs".into(),
        line: 7,
        lint: "determinism",
        message: "tab\there \"quoted\"".into(),
    };
    let json = foxlint::render_json(std::slice::from_ref(&v));
    let parsed = parse_findings_json(&json);
    assert_eq!(parsed.len(), 1);
    assert_eq!(parsed[0].0, v.path);
    assert_eq!(parsed[0].3, v.message);
    // Empty input renders an empty (still valid) array.
    assert_eq!(foxlint::render_json(&[]).trim(), "[]");
}

#[test]
fn shard_global_fires_on_static_mut_and_thread_local() {
    let (vs, _) = run("shard_global_fire.rs", "crates/foxtcp/src/fixture.rs");
    assert_eq!(lints_of(&vs), vec!["shard_global", "shard_global"], "{vs:?}");
    assert!(vs[0].message.contains("static mut"), "{vs:?}");
    assert!(vs[1].message.contains("thread_local"), "{vs:?}");
}

#[test]
fn shard_global_is_silent_on_engine_state_and_allowed_diagnostics() {
    let (vs, allowed) = run("shard_global_clean.rs", "crates/foxtcp/src/fixture.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1, "the justified thread_local is suppressed");
    // Out of scope: a non-trace crate may keep globals.
    let (vs, _) = run("shard_global_fire.rs", "crates/bench/src/fixture.rs");
    assert!(vs.is_empty(), "bench is not trace-affecting: {vs:?}");
}

#[test]
fn shard_rc_fires_on_public_signatures() {
    let (vs, _) = run("shard_rc_fire.rs", "crates/foxtcp/src/fixture.rs");
    // The alias, the pub field, and the pub fn return type.
    assert_eq!(lints_of(&vs), vec!["shard_rc"; 3], "{vs:?}");
}

#[test]
fn shard_rc_is_silent_on_private_and_crate_visibility() {
    let (vs, _) = run("shard_rc_clean.rs", "crates/foxtcp/src/fixture.rs");
    assert!(vs.is_empty(), "{vs:?}");
    // Scope is foxtcp only: other crates may use Rc publicly (foxbasis
    // buf sharing is Rc-based by design).
    let (vs, _) = run("shard_rc_fire.rs", "crates/foxbasis/src/fixture.rs");
    assert!(vs.is_empty(), "only foxtcp's surface is confined: {vs:?}");
}

#[test]
fn shard_tcb_fires_outside_the_engine_modules() {
    let (vs, _) = run("shard_tcb_fire.rs", "crates/harness/src/fixture.rs");
    // `.tcb` appears three times (both sides of the write, plus the
    // read); the tcb_write lint also fires on the snd_nxt assignment —
    // filter to the shard lint.
    let shard: Vec<_> = vs.iter().filter(|v| v.lint == "shard_tcb").collect();
    assert_eq!(shard.len(), 3, "{vs:?}");
}

#[test]
fn shard_tcb_is_silent_inside_the_engine_and_on_api_use() {
    let (vs, _) = run("shard_tcb_clean.rs", "crates/harness/src/fixture.rs");
    assert!(vs.is_empty(), "{vs:?}");
    // The engine modules themselves are the sanctioned route.
    let (vs, _) = run("shard_tcb_fire.rs", "crates/foxtcp/src/engine.rs");
    assert!(vs.iter().all(|v| v.lint != "shard_tcb"), "{vs:?}");
    let (vs, _) = run("shard_tcb_fire.rs", "crates/foxtcp/src/control/segment.rs");
    assert!(vs.iter().all(|v| v.lint != "shard_tcb"), "{vs:?}");
}
