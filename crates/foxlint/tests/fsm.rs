//! Tests for the FSM extractor: a fixture control file with a known
//! graph, the two-way spec ratchet (a deliberately missing transition
//! and a deliberately spurious one), spec-parser rejection of malformed
//! input, and idempotence of extraction over the real repository.

use foxlint::fsm::{self, FsmGraph};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn mini_graph() -> FsmGraph {
    let src = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fsm/mini_control.rs"),
    )
    .expect("fixture");
    fsm::extract(&[("mini_control.rs", &src)]).expect("extraction succeeds")
}

fn keys(g: &FsmGraph) -> Vec<String> {
    g.keys().iter().map(|(f, t, tr)| format!("{f} -> {t} : {tr}")).collect()
}

#[test]
fn fixture_graph_is_exactly_the_documented_one() {
    let g = mini_graph();
    let mut expected = vec![
        "CLOSED -> SYN-SENT : open".to_string(),
        "SYN-SENT -> CLOSED : close".to_string(),
        "ESTABLISHED -> FIN-WAIT-1 : close".to_string(),
        "SYN-SENT -> ESTABLISHED : syn".to_string(),
        "SYN-RECEIVED -> ESTABLISHED : ack".to_string(),
        "FIN-WAIT-1 -> FIN-WAIT-2 : ack".to_string(),
    ];
    for st in [
        "SYN-RECEIVED",
        "ESTABLISHED",
        "FIN-WAIT-1",
        "FIN-WAIT-2",
        "CLOSE-WAIT",
        "CLOSING",
        "LAST-ACK",
        "TIME-WAIT",
    ] {
        expected.push(format!("{st} -> CLOSED : rst"));
    }
    for st in [
        "LISTEN",
        "SYN-SENT",
        "SYN-RECEIVED",
        "ESTABLISHED",
        "FIN-WAIT-1",
        "FIN-WAIT-2",
        "CLOSE-WAIT",
        "CLOSING",
        "LAST-ACK",
        "TIME-WAIT",
    ] {
        expected.push(format!("{st} -> CLOSED : timer"));
    }
    expected.sort();
    assert_eq!(keys(&g), expected);
}

#[test]
fn write_sites_point_into_the_fixture() {
    let g = mini_graph();
    for sites in g.edges.values() {
        for (file, line) in sites {
            assert_eq!(file, "mini_control.rs");
            assert!(*line > 0);
        }
    }
}

/// Spec text matching the fixture graph exactly.
fn mini_spec_text() -> String {
    let g = mini_graph();
    g.keys().iter().map(|(f, t, tr)| format!("{f} -> {t} : {tr}\n")).collect()
}

#[test]
fn matching_spec_diffs_clean() {
    let spec = fsm::parse_spec(&mini_spec_text()).unwrap();
    let d = fsm::diff_spec(&mini_graph(), &spec);
    assert!(d.is_clean(), "{d:?}");
}

#[test]
fn missing_transition_is_reported_as_spec_only() {
    // The spec demands an edge the fixture deliberately does not
    // implement: there is no FIN handling at all.
    let mut text = mini_spec_text();
    text.push_str("ESTABLISHED -> CLOSE-WAIT : fin\n");
    let spec = fsm::parse_spec(&text).unwrap();
    let d = fsm::diff_spec(&mini_graph(), &spec);
    assert!(d.code_only.is_empty(), "{d:?}");
    assert_eq!(d.spec_only.len(), 1);
    assert_eq!(d.spec_only[0].key(), ("ESTABLISHED".into(), "CLOSE-WAIT".into(), "fin".into()));
}

#[test]
fn spurious_transition_is_reported_as_code_only() {
    // Drop one implemented edge from the spec: the extractor must flag
    // the implementation as out in front of the contract.
    let text: String = mini_spec_text()
        .lines()
        .filter(|l| *l != "SYN-SENT -> ESTABLISHED : syn")
        .map(|l| format!("{l}\n"))
        .collect();
    let spec = fsm::parse_spec(&text).unwrap();
    let d = fsm::diff_spec(&mini_graph(), &spec);
    assert!(d.spec_only.is_empty(), "{d:?}");
    assert_eq!(d.code_only.len(), 1);
    assert_eq!(d.code_only[0].0, ("SYN-SENT".into(), "ESTABLISHED".into(), "syn".into()));
}

#[test]
fn spec_parser_rejects_malformed_input() {
    assert!(fsm::parse_spec("NOWHERE -> CLOSED : rst").is_err(), "unknown state");
    assert!(fsm::parse_spec("CLOSED -> LISTEN : shrug").is_err(), "unknown trigger");
    assert!(fsm::parse_spec("CLOSED LISTEN open").is_err(), "missing arrow");
    assert!(fsm::parse_spec("CLOSED -> LISTEN : open  @untested(both:)").is_err(), "empty reason");
    assert!(fsm::parse_spec("CLOSED -> LISTEN : open  @untested(everyone: x)").is_err(), "bad scope");
    assert!(fsm::parse_spec("CLOSED -> LISTEN : open\nCLOSED -> LISTEN : open").is_err(), "duplicate edge");
}

#[test]
fn untested_scopes_resolve_per_stack() {
    let spec = fsm::parse_spec(
        "CLOSED -> LISTEN : open  @untested(both: a)\n\
         CLOSED -> SYN-SENT : open  @untested(fox: b)\n\
         LISTEN -> CLOSED : close  @untested(xk: c)\n\
         SYN-SENT -> CLOSED : close\n",
    )
    .unwrap();
    assert!(spec[0].untested_for("fox") && spec[0].untested_for("xk"));
    assert!(spec[1].untested_for("fox") && !spec[1].untested_for("xk"));
    assert!(!spec[2].untested_for("fox") && spec[2].untested_for("xk"));
    assert!(!spec[3].untested_for("fox") && !spec[3].untested_for("xk"));
}

#[test]
fn repo_extraction_is_idempotent_and_matches_spec() {
    let root = repo_root();
    let a = fsm::extract_root(&root).expect("first extraction");
    let b = fsm::extract_root(&root).expect("second extraction");
    assert_eq!(a, b, "extraction must be deterministic");
    assert!(a.edges.len() >= 50, "the real machine has {} edges", a.edges.len());
    // Spot-check the canonical handshake edges.
    for key in [
        ("LISTEN".to_string(), "SYN-RECEIVED".to_string(), "syn".to_string()),
        ("SYN-SENT".to_string(), "ESTABLISHED".to_string(), "syn".to_string()),
        ("SYN-RECEIVED".to_string(), "ESTABLISHED".to_string(), "ack".to_string()),
    ] {
        assert!(a.edges.contains_key(&key), "missing {key:?}");
    }
    // And the checked-in spec must match, exactly as ci.sh enforces.
    let report = fsm::check_fsm(&root).expect("check_fsm");
    assert!(report.drift.is_clean(), "code<->spec drift: {:?}", report.drift);
}

#[test]
fn dot_output_is_deterministic_and_complete() {
    let g = mini_graph();
    let dot = fsm::to_dot(&g);
    assert_eq!(dot, fsm::to_dot(&g));
    assert!(dot.starts_with("// Generated by `foxlint --fsm-dot`"));
    for (from, to, trigger) in g.keys() {
        assert!(
            dot.contains(&format!("\"{from}\" -> \"{to}\" [label=\"{trigger}\"")),
            "missing {from}->{to}:{trigger} in DOT"
        );
    }
}
