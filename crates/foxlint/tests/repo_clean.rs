//! The ratchet, enforced from the test suite too: linting the real
//! workspace must agree with the checked-in baseline in both
//! directions. This is the same check `ci.sh` runs via
//! `cargo run -p foxlint -- --check`.

use std::path::PathBuf;

#[test]
fn workspace_matches_baseline() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = foxlint::check_root(&root);
    assert!(outcome.files > 50, "walk found only {} files — wrong root?", outcome.files);
    let current = foxlint::count(&outcome.violations);
    let baseline = foxlint::load_baseline(&root.join("foxlint.baseline")).expect("baseline");
    let drift = foxlint::compare(&current, &baseline);
    assert!(
        drift.grown.is_empty(),
        "new violations vs baseline:\n{}",
        outcome.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert!(drift.stale.is_empty(), "stale baseline entries: {:?}", drift.stale);
}
