#!/usr/bin/env bash
# Full local CI gate. Run from the repository root.
#
#   ./ci.sh
#
# Eleven stages, all must pass:
#   1. formatting (fails fast, before anything compiles)
#   2. foxlint: the workspace invariant lints (determinism, hash_iter,
#      rx_panic, tcb_write, cc_write, win_cast, ctrl_data, and the
#      shard_global/shard_rc/shard_tcb shard-confinement family — see
#      DESIGN.md §5.8, §5.13), ratcheted against foxlint.baseline;
#      fails on new violations AND on stale entries
#   3. release build of every crate and target
#   4. the whole workspace test suite
#   5. the RFC-793 conformance suite, explicitly (both TCP stacks
#      against the standard's state diagram; also part of stage 4, but
#      a named stage keeps the gate visible)
#   6. the TCP-options interop matrix under fixed seeds: {none, wscale,
#      sack, ts, all} × {fox↔fox, fox↔xk} × the loss-matrix fault
#      profiles, every cell delivered in full and replayed
#      bit-identically, plus the SACK-beats-NewReno burst-loss
#      assertions (the `tables` binary panics if any of it regresses)
#   7. adversarial smoke: a fixed 6-cell subset of the adversarial
#      matrix (DESIGN.md §5.12) — each cell internally run twice with
#      bit-identical reports asserted — executed as two whole process
#      runs whose rendered tables must diff to zero
#   8. bench smoke: a small `tables -- bench-json` run end to end (its
#      output schema-validated by bench-check, fox ≥ xk on the modern
#      profile asserted), then bench-check against the checked-in
#      BENCH_7.json trajectory
#   9. the Criterion benches compile (not run; keeps them from rotting)
#  10. clippy over every target (benches and bins too), warnings as errors
#  11. the FSM gate: `foxlint --fsm-check` proves the state machine
#      extracted from foxtcp's control/ source equals spec/tcp_fsm.txt,
#      then the conformance coverage ratchet proves every non-exempt
#      spec edge is witnessed at runtime by both stacks (printing the
#      edges-covered/total counts per stack)
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt (check) =="
cargo fmt --check

echo "== foxlint (invariant lints, baseline ratchet) =="
cargo run -q -p foxlint -- --check

echo "== build (release) =="
cargo build --release

echo "== test (workspace) =="
cargo test -q --workspace

echo "== conformance (RFC 793, both stacks) =="
cargo test -q -p foxtcp --test conformance

echo "== options interop matrix (fixed seeds) =="
cargo run -q --release -p foxbench --bin tables -- interop

echo "== adversarial smoke (6 fixed cells, two runs, diffed to zero) =="
ADV_SMOKE_A=$(mktemp /tmp/adv_smoke_a.XXXXXX.txt)
ADV_SMOKE_B=$(mktemp /tmp/adv_smoke_b.XXXXXX.txt)
trap 'rm -f "$ADV_SMOKE_A" "$ADV_SMOKE_B"' EXIT
cargo run -q --release -p foxbench --bin tables -- adversarial-smoke > "$ADV_SMOKE_A"
cargo run -q --release -p foxbench --bin tables -- adversarial-smoke > "$ADV_SMOKE_B"
diff "$ADV_SMOKE_A" "$ADV_SMOKE_B"

echo "== bench smoke (segments/sec trajectory) =="
BENCH_SMOKE_OUT=$(mktemp /tmp/bench_smoke.XXXXXX.json)
trap 'rm -f "$ADV_SMOKE_A" "$ADV_SMOKE_B" "$BENCH_SMOKE_OUT"' EXIT
cargo run -q --release -p foxbench --bin tables -- bench-json \
  --out "$BENCH_SMOKE_OUT" --bytes 200000 --reps 5 --label ci-smoke
cargo run -q --release -p foxbench --bin tables -- bench-check BENCH_7.json

echo "== bench (compile only) =="
cargo bench --workspace --no-run

echo "== clippy (all targets, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fsm gate (extracted graph == spec, spec edges covered at runtime) =="
cargo run -q -p foxlint -- --fsm-check
cargo test -q -p foxtcp --test conformance \
  runtime_transitions_cover_the_extracted_fsm_spec -- --nocapture \
  | grep -E "fsm coverage|test result"

echo "CI OK"
