#!/usr/bin/env bash
# Full local CI gate. Run from the repository root.
#
#   ./ci.sh
#
# Three stages, all must pass:
#   1. release build of every crate and target
#   2. the whole workspace test suite
#   3. clippy with warnings promoted to errors
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== test (workspace) =="
cargo test -q --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "CI OK"
