#!/usr/bin/env bash
# Full local CI gate. Run from the repository root.
#
#   ./ci.sh
#
# Six stages, all must pass:
#   1. formatting (fails fast, before anything compiles)
#   2. release build of every crate and target
#   3. the whole workspace test suite
#   4. the RFC-793 conformance suite, explicitly (both TCP stacks
#      against the standard's state diagram; also part of stage 3, but
#      a named stage keeps the gate visible)
#   5. the Criterion benches compile (not run; keeps them from rotting)
#   6. clippy over every target (benches and bins too), warnings as errors
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt (check) =="
cargo fmt --check

echo "== build (release) =="
cargo build --release

echo "== test (workspace) =="
cargo test -q --workspace

echo "== conformance (RFC 793, both stacks) =="
cargo test -q -p foxtcp --test conformance

echo "== bench (compile only) =="
cargo bench --workspace --no-run

echo "== clippy (all targets, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
