//! # FoxNet-RS
//!
//! A Rust reproduction of *A Structured TCP in Standard ML*
//! (Edoardo S. Biagioni, SIGCOMM '94 / CMU-CS-94-171): the Fox Project's
//! structured TCP/IP stack, its coroutine scheduler, its x-kernel-style
//! composable protocol architecture, the simulated 1994 environment it
//! was measured in (DECstation 5000/125 + Mach 3.0 + SML/NJ runtime),
//! and the x-kernel baseline it was compared against.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`foxbasis`] — the Fox Basis utility substrate (queues, buffers,
//!   checksums, copies, virtual time, profiling counters);
//! * [`fox_scheduler`] — the non-preemptive coroutine scheduler and the
//!   paper's Fig. 11 timers;
//! * [`foxwire`] — wire formats (Ethernet + CRC, ARP, IPv4, ICMP, UDP,
//!   TCP);
//! * [`simnet`] — the simulated 10 Mb/s Ethernet, host cost models, and
//!   the SML/NJ GC model;
//! * [`foxproto`] — the generic `PROTOCOL` signature and the stack below
//!   TCP (Dev, Eth, Arp, Ip, Icmp, Udp) plus the `IP_AUX` structures;
//! * [`foxtcp`] — **the paper's core contribution**: the structured TCP
//!   with its Tcb/State/Receive/Send/Resend/Action decomposition and
//!   quasi-synchronous `to_do`-queue control structure;
//! * [`xktcp`] — the monolithic x-kernel/Berkeley-style baseline;
//! * [`foxharness`] — stack assembly (the paper's Fig. 3), workloads,
//!   and the experiments regenerating every table in §5.
//!
//! Start with `examples/quickstart.rs`; DESIGN.md maps the paper to the
//! code and EXPERIMENTS.md records paper-vs-measured numbers.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub use fox_scheduler;
pub use foxbasis;
pub use foxharness;
pub use foxproto;
pub use foxtcp;
pub use foxwire;
pub use simnet;
pub use xktcp;
