//! The paper's throughput benchmark (the Table 1 workload), runnable
//! for any stack and machine model.
//!
//! "The test consists of sending 10^6 bytes of data between a designated
//! sender and a designated receiver on an isolated 10Mb/s ethernet."
//!
//! Usage: `cargo run --release --example bulk_transfer -- [fox|xk|special] [1994|modern] [bytes] [capture.pcap]`
//!
//! With a fourth argument, every frame on the simulated wire is written
//! to a Wireshark-readable pcap file.

use foxbasis::time::VirtualTime;
use foxharness::experiments::paper_tcp_config;
use foxharness::stack::StackKind;
use foxharness::workload::bulk_transfer;
use simnet::{CostModel, SimNet};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = match args.get(1).map(String::as_str) {
        Some("xk") => StackKind::XKernel,
        Some("special") => StackKind::FoxSpecial,
        _ => StackKind::FoxStandard,
    };
    let (cost, cost_name): (fn() -> CostModel, _) = match args.get(2).map(String::as_str) {
        Some("modern") => (CostModel::modern as fn() -> CostModel, "modern (free CPU)"),
        _ => {
            if kind == StackKind::XKernel {
                (CostModel::decstation_c as fn() -> CostModel, "DECstation 5000/125 (C)")
            } else {
                (CostModel::decstation_sml as fn() -> CostModel, "DECstation 5000/125 (SML/NJ)")
            }
        }
    };
    let bytes: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);

    println!("stack: {}   machine: {cost_name}   transfer: {bytes} bytes", kind.name());
    let net = SimNet::ethernet_10mbps(42);
    let capture = args.get(4).map(|path| (net.capture(), std::path::PathBuf::from(path)));
    let mut sender = kind.build(&net, 1, 2, cost(), false, paper_tcp_config());
    let mut receiver = kind.build(&net, 2, 1, cost(), false, paper_tcp_config());
    let r = bulk_transfer(&net, &mut sender, &mut receiver, bytes, VirtualTime::from_micros(u64::MAX / 2));

    println!();
    println!("elapsed (virtual): {}", r.elapsed);
    println!("throughput:        {:.2} Mb/s   (paper: Fox Net 0.6, x-kernel 2.5)", r.throughput_mbps);
    println!(
        "sender:            {} segments ({} retransmitted), {} payload bytes",
        r.sender.segments_sent, r.sender.retransmits, r.sender.bytes_sent
    );
    println!(
        "receiver:          {} segments in, fast path took {}",
        r.receiver.segments_received, r.receiver.fastpath_hits
    );
    if let Some(gc) = &r.sender_gc {
        println!(
            "sender GC:         {} minors, {} majors, {} total pause (max {})",
            gc.minors, gc.majors, gc.total_pause, gc.max_pause
        );
    }
    println!("wire:              {} frames, {} bytes", r.net.frames_sent, r.net.bytes_sent);
    if let Some((sink, path)) = capture {
        sink.write_to(&path).expect("write pcap");
        println!("pcap:              {} frames -> {}", sink.frame_count(), path.display());
    }
}
