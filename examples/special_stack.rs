//! Fig. 3's non-standard composition: `Special_Tcp` — TCP directly over
//! Ethernet, no IP, TCP checksums off.
//!
//! "This makes it possible to combine protocols in new and useful ways,
//! for instance by having an instance of TCP run directly over ethernet,
//! without IP." The safety argument is the Ethernet CRC; our simulated
//! Ethernet really computes and verifies the FCS, so we also demonstrate
//! that wire corruption is caught *below* TCP even with TCP checksums
//! disabled.
//!
//! Run with: `cargo run --release --example special_stack`

use foxbasis::time::{VirtualDuration, VirtualTime};
use foxharness::sim::drive;
use foxharness::stack::StackKind;
use foxharness::workload::bulk_transfer;
use foxtcp::TcpConfig;
use simnet::{CostModel, NetConfig, SimNet};

fn transfer(kind: StackKind, corrupt: f64, label: &str) {
    let mut cfg = NetConfig::default();
    cfg.faults.corrupt_chance = corrupt;
    let net = SimNet::new(cfg, 99);
    let mut sender = kind.build(&net, 1, 2, CostModel::modern(), false, TcpConfig::default());
    let mut receiver = kind.build(&net, 2, 1, CostModel::modern(), false, TcpConfig::default());
    let r = bulk_transfer(&net, &mut sender, &mut receiver, 300_000, VirtualTime::from_micros(u64::MAX / 2));
    println!(
        "{label:<38} {:>6.2} Mb/s  retransmits={:<3} corrupted-frames={:<3} tcp-checksum-drops={}",
        r.throughput_mbps, r.sender.retransmits, r.net.frames_corrupted, r.receiver.checksum_failures,
    );
    assert_eq!(r.bytes, 300_000, "transfer must complete intact");
}

fn main() {
    println!("structure Standard_Tcp = Tcp (structure Lower = Ip,  val do_checksums = true)");
    println!("structure Special_Tcp  = Tcp (structure Lower = Eth, val do_checksums = false)");
    println!();

    // Both compositions carry the same workload on a clean wire.
    transfer(StackKind::FoxStandard, 0.0, "Standard_Tcp, clean wire");
    transfer(StackKind::FoxSpecial, 0.0, "Special_Tcp,  clean wire");

    // With 2% frame corruption the standard stack drops bad segments at
    // the TCP checksum; the special stack has no TCP checksum, yet the
    // data still arrives intact — the Ethernet FCS rejects the frames
    // below TCP ("specific knowledge that the Ethernet implementation
    // implements the CRC correctly").
    transfer(StackKind::FoxStandard, 0.02, "Standard_Tcp, 2% corruption");
    transfer(StackKind::FoxSpecial, 0.02, "Special_Tcp,  2% corruption");

    // And the quickstart exchange works over the special stack too.
    let net = SimNet::ethernet_10mbps(1);
    let mut a = StackKind::FoxSpecial.build(&net, 1, 2, CostModel::modern(), false, TcpConfig::default());
    let mut b = StackKind::FoxSpecial.build(&net, 2, 1, CostModel::modern(), false, TcpConfig::default());
    b.listen(80);
    let conn = a.connect(80);
    let mut bc = None;
    drive(
        &net,
        &mut [&mut a, &mut b],
        |st| {
            if bc.is_none() {
                bc = st[1].accept();
            }
            bc.is_some() && st[0].established(conn)
        },
        VirtualDuration::from_millis(1),
        VirtualTime::from_millis(5_000),
    );
    a.send(conn, b"no IP layer under this segment");
    let bc = bc.unwrap();
    drive(
        &net,
        &mut [&mut a, &mut b],
        |st| st[1].received_len(bc) > 0,
        VirtualDuration::from_millis(1),
        VirtualTime::from_millis(5_000),
    );
    println!();
    println!("Special_Tcp delivered: {:?}", String::from_utf8_lossy(&b.recv(bc)));
}
