//! The paper's closing thought, made runnable: "we may want to imitate
//! or re-implement ... CML (Concurrent ML) ... typed channels and
//! lightweight threads" (§6), on exactly the coroutine scheduler that
//! runs the TCP timers.
//!
//! A tiny sliding-window "protocol" built from channels: a producer
//! coroutine, a bounded-window forwarder, and a consumer, all rendezvous
//! over typed channels while Fig. 11 timers tick on the same scheduler.
//!
//! Run with: `cargo run --example channels`

use fox_scheduler::channel::Channel;
use fox_scheduler::{timer, Scheduler};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let mut s = Scheduler::new();
    let upstream: Channel<u32> = Channel::new();
    let downstream: Channel<u32> = Channel::new();
    let received = Rc::new(RefCell::new(Vec::new()));

    // Producer: sends 1..=10 upstream, each send a rendezvous.
    fn produce(s: &mut Scheduler, ch: Channel<u32>, i: u32) {
        if i <= 10 {
            let next = ch.clone();
            println!("producer: offering {i}");
            ch.send(s, i, Box::new(move |s| produce(s, next, i + 1)));
        }
    }

    // Forwarder: receives upstream, "transmits" downstream after a
    // 5 ms serialization timer — channels and timers interleaving on
    // one scheduler, the CML programming model.
    fn forward(s: &mut Scheduler, up: Channel<u32>, down: Channel<u32>) {
        let (u2, d2) = (up.clone(), down.clone());
        up.recv(
            s,
            Box::new(move |s, v| {
                let (u3, d3) = (u2.clone(), d2.clone());
                timer::start_ms(
                    s,
                    5,
                    Box::new(move |s| {
                        let (u4, d4) = (u3.clone(), d3.clone());
                        d3.send(s, v * v, Box::new(move |s| forward(s, u4, d4)));
                    }),
                );
            }),
        );
    }

    // Consumer: collects squares.
    fn consume(s: &mut Scheduler, ch: Channel<u32>, out: Rc<RefCell<Vec<u32>>>) {
        let c2 = ch.clone();
        let o2 = out.clone();
        ch.recv(
            s,
            Box::new(move |s, v| {
                println!("consumer: got {v} at t = {}", s.now());
                o2.borrow_mut().push(v);
                consume(s, c2, o2.clone());
            }),
        );
    }

    produce(&mut s, upstream.clone(), 1);
    forward(&mut s, upstream.clone(), downstream.clone());
    consume(&mut s, downstream.clone(), received.clone());
    s.run_until_idle();

    println!();
    println!("received: {:?}", received.borrow());
    println!(
        "scheduler: {} forks, {} switches, finished at t = {}",
        s.stats().forks,
        s.stats().switches,
        s.now()
    );
    assert_eq!(*received.borrow(), (1..=10u32).map(|i| i * i).collect::<Vec<_>>());
}
