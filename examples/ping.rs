//! The substrate protocols on their own: ARP resolution, ICMP ping, and
//! a UDP echo exchange — the x-kernel-style layers below TCP working as
//! a host stack (several upper protocols sharing one Ip instance via
//! `Shared`).
//!
//! Run with: `cargo run --example ping`

use foxproto::aux::IpAuxImpl;
use foxproto::dev::Dev;
use foxproto::eth::Eth;
use foxproto::icmp::{Icmp, Ping};
use foxproto::ip::{Ip, IpConfig};
use foxproto::shared::Shared;
use foxproto::udp::Udp;
use foxproto::Protocol;
use foxwire::ether::EthAddr;
use foxwire::ipv4::{IpProtocol, Ipv4Addr};
use simnet::{HostHandle, SimNet};
use std::cell::RefCell;
use std::rc::Rc;

type HostIp = Shared<Ip<Eth<Dev>>>;

struct HostStack {
    ip: HostIp,
    icmp: Icmp<HostIp>,
    udp: Udp<HostIp, IpAuxImpl>,
}

fn station(net: &SimNet, id: u8) -> HostStack {
    let host = HostHandle::free();
    let mac = EthAddr::host(id);
    let local = Ipv4Addr::new(192, 168, 69, id);
    let eth = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host.clone());
    let ip = Shared::new(Ip::new(eth, mac, IpConfig::isolated(local), host.clone()));
    let mtu = ip.with(|i| i.mtu());
    let mut icmp = Icmp::new(ip.clone(), host.clone());
    icmp.activate().expect("icmp responder");
    let udp = Udp::new(ip.clone(), IpAuxImpl::new(local, IpProtocol::Udp, mtu), IpProtocol::Udp, true, host);
    HostStack { ip, icmp, udp }
}

fn settle(net: &SimNet, stacks: &mut [&mut HostStack]) {
    for _ in 0..200 {
        let mut progress = false;
        for s in stacks.iter_mut() {
            progress |= s.icmp.step(net.now());
            progress |= s.udp.step(net.now());
            progress |= s.ip.step(net.now());
        }
        if let Some(t) = net.next_delivery() {
            net.advance_to(t);
            progress = true;
        }
        if !progress {
            break;
        }
    }
}

fn main() {
    let net = SimNet::ethernet_10mbps(5);
    let mut a = station(&net, 1);
    let mut b = station(&net, 2);

    println!("== ping 192.168.69.2 (first probe also resolves ARP)");
    let mut ping = Ping::new(&mut a.icmp, 0xF0F0).expect("ping session");
    for _ in 0..4 {
        let t0 = net.now();
        let seq = ping.probe(&mut a.icmp, Ipv4Addr::new(192, 168, 69, 2), t0).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        let got = ping.replies().iter().any(|r| r.seq == seq);
        println!("   icmp_seq={seq} {} t={}", if got { "reply received" } else { "timed out" }, net.now());
    }
    println!("   {} requests answered by the remote responder", b.icmp.stats().requests_answered);

    println!();
    println!("== UDP echo on port 6969 (responds with reversed chunks, like the classic demo)");
    let echo_log = Rc::new(RefCell::new(Vec::<(Ipv4Addr, u16, Vec<u8>)>::new()));
    let log = echo_log.clone();
    b.udp
        .open(6969, Box::new(move |m| log.borrow_mut().push((m.src.0, m.src.1, m.payload.to_vec()))))
        .expect("bind echo port");

    let replies = Rc::new(RefCell::new(Vec::<Vec<u8>>::new()));
    let r2 = replies.clone();
    let a_sock = a.udp.open(5000, Box::new(move |m| r2.borrow_mut().push(m.payload.to_vec()))).unwrap();

    a.udp.send(a_sock, (Ipv4Addr::new(192, 168, 69, 2), 6969), b"abcdefg".to_vec()).unwrap();
    settle(&net, &mut [&mut a, &mut b]);

    // The echo application: reverse and send back.
    let pending: Vec<_> = echo_log.borrow_mut().drain(..).collect();
    let b_sock = b.udp.open(6969 + 1, Box::new(|_| {})).unwrap();
    for (src, port, mut data) in pending {
        data.reverse();
        b.udp.send(b_sock, (src, port), data).ok(); // back to the sender
    }
    settle(&net, &mut [&mut a, &mut b]);
    for r in replies.borrow().iter() {
        println!("   echoed back: {:?}", String::from_utf8_lossy(r));
    }

    println!();
    println!("wire totals: {:?}", net.stats());
}
