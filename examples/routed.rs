//! Two Ethernet segments, one IP router, one TCP session across them.
//!
//! Exercises the whole substrate at once: per-segment ARP, gateway
//! routing at the hosts, store-and-forward at the router (TTL decrement
//! with RFC 1624 incremental checksum update), and the structured TCP on
//! top, end to end.
//!
//! Run with: `cargo run --release --example routed`

use fox_scheduler::SchedHandle;
use foxbasis::time::VirtualDuration;
use foxproto::aux::IpAuxImpl;
use foxproto::dev::Dev;
use foxproto::eth::Eth;
use foxproto::ip::{Ip, IpConfig};
use foxproto::router::Router;
use foxproto::Protocol;
use foxtcp::{Tcp, TcpConfig, TcpConnId, TcpEvent, TcpPattern};
use foxwire::ether::EthAddr;
use foxwire::ipv4::{IpProtocol, Ipv4Addr};
use simnet::{HostHandle, SimNet};
use std::cell::RefCell;
use std::rc::Rc;

type Stack = Tcp<Ip<Eth<Dev>>, IpAuxImpl>;

fn station(net: &SimNet, mac_id: u8, addr: Ipv4Addr, gateway: Ipv4Addr) -> Stack {
    let host = HostHandle::free();
    let mac = EthAddr::host(mac_id);
    let eth = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host.clone());
    let ip = Ip::new(
        eth,
        mac,
        IpConfig { local: addr, prefix_len: 24, gateway: Some(gateway), ttl: 64 },
        host.clone(),
    );
    let mtu = ip.mtu();
    let aux = IpAuxImpl::new(addr, IpProtocol::Tcp, mtu);
    let cfg = TcpConfig { nagle: false, delayed_ack_ms: None, ..TcpConfig::default() };
    Tcp::new(ip, aux, IpProtocol::Tcp, cfg, SchedHandle::new(), host)
}

fn main() {
    println!("segment 1 (10.0.0.0/24)  <->  router  <->  segment 2 (10.0.1.0/24)");
    let net1 = SimNet::ethernet_10mbps(11);
    let net2 = SimNet::ethernet_10mbps(22);
    let mut client = station(&net1, 1, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 254));
    let mut server = station(&net2, 2, Ipv4Addr::new(10, 0, 1, 2), Ipv4Addr::new(10, 0, 1, 254));
    let mut router = Router::new();
    router
        .add_interface(&net1, EthAddr::host(101), Ipv4Addr::new(10, 0, 0, 254), 24, HostHandle::free())
        .unwrap();
    router
        .add_interface(&net2, EthAddr::host(102), Ipv4Addr::new(10, 0, 1, 254), 24, HostHandle::free())
        .unwrap();

    let events = Rc::new(RefCell::new(Vec::new()));
    let received = Rc::new(RefCell::new(Vec::new()));
    server.open(TcpPattern::Passive { local_port: 80 }, Box::new(|_| {})).unwrap();
    let ev = events.clone();
    let conn = client
        .open(
            TcpPattern::Active { remote: Ipv4Addr::new(10, 0, 1, 2), remote_port: 80, local_port: 0 },
            Box::new(move |e| ev.borrow_mut().push(e)),
        )
        .unwrap();

    let drive = |client: &mut Stack, server: &mut Stack, router: &mut Router, ms: u64| {
        let mut now = net1.now().max(net2.now());
        let end = now + VirtualDuration::from_millis(ms);
        while now < end {
            for _ in 0..50 {
                let mut progress = client.step(now) | server.step(now) | router.step(now);
                for n in [&net1, &net2] {
                    if let Some(t) = n.next_delivery() {
                        if t <= now {
                            n.advance_to(now);
                            progress = true;
                        }
                    }
                }
                if !progress {
                    break;
                }
            }
            let mut next = now + VirtualDuration::from_millis(1);
            for n in [&net1, &net2] {
                if let Some(t) = n.next_delivery() {
                    next = next.min(t.max(now + VirtualDuration::from_micros(1)));
                }
            }
            for n in [&net1, &net2] {
                if n.now() < next {
                    n.advance_to(next);
                }
            }
            now = next;
        }
    };

    drive(&mut client, &mut server, &mut router, 2_000);
    assert!(events.borrow().contains(&TcpEvent::Established));
    println!("connected: 10.0.0.1 -> 10.0.1.2 (SYN crossed the router both ways)");

    let r = received.clone();
    server
        .set_handler(
            TcpConnId(1),
            Box::new(move |e| {
                if let TcpEvent::Data(d) = e {
                    r.borrow_mut().extend_from_slice(&d);
                }
            }),
        )
        .unwrap();

    let payload: Vec<u8> = (0..120_000u32).map(|i| (i % 247) as u8).collect();
    let mut sent = 0;
    while received.borrow().len() < payload.len() {
        sent += client.send_data(conn, &payload[sent..]).unwrap_or(0);
        drive(&mut client, &mut server, &mut router, 100);
    }
    println!(
        "transferred {} bytes across subnets, byte-exact: {}",
        received.borrow().len(),
        received.borrow().as_slice() == payload.as_slice()
    );
    println!("router: {:?}", router.stats());
    println!("segment 1: {:?}", net1.stats());
    println!("segment 2: {:?}", net2.stats());
}
