//! Fault injection: the conditions the Resend module exists for.
//!
//! Runs the bulk workload across increasingly hostile wires — drops,
//! corruption, duplication, reordering jitter — and shows the transfer
//! completing intact every time, with the Karn/Jacobson machinery
//! visible in the retransmission counts.
//!
//! Run with: `cargo run --release --example lossy_link`

use foxbasis::time::{VirtualDuration, VirtualTime};
use foxharness::stack::StackKind;
use foxharness::workload::bulk_transfer;
use foxtcp::TcpConfig;
use simnet::{CostModel, FaultConfig, NetConfig, SimNet};

fn run(label: &str, faults: FaultConfig) {
    let net = SimNet::new(NetConfig { faults, ..NetConfig::default() }, 4242);
    let cfg = TcpConfig { delayed_ack_ms: None, ..TcpConfig::default() };
    let mut sender = StackKind::FoxStandard.build(&net, 1, 2, CostModel::modern(), false, cfg.clone());
    let mut receiver = StackKind::FoxStandard.build(&net, 2, 1, CostModel::modern(), false, cfg);
    let bytes = 250_000;
    let r = bulk_transfer(&net, &mut sender, &mut receiver, bytes, VirtualTime::from_micros(u64::MAX / 2));
    assert_eq!(r.bytes, bytes, "{label}: data must arrive complete and intact");
    let n = r.net;
    println!(
        "{label:<28} {:>7.3} Mb/s  retx={:<4} dropped={:<4} corrupted={:<4} dup={:<3} ooo-segs={}",
        r.throughput_mbps,
        r.sender.retransmits,
        n.frames_dropped_fault,
        n.frames_corrupted,
        n.frames_duplicated,
        r.receiver.segments_received - r.receiver.fastpath_hits, // full-path segments
    );
}

fn main() {
    println!("250 KB through a 10 Mb/s wire under increasing abuse (window 4096):");
    println!();
    run("clean", FaultConfig::default());
    run("3% drop", FaultConfig { drop_chance: 0.03, ..FaultConfig::default() });
    run("10% drop", FaultConfig { drop_chance: 0.10, ..FaultConfig::default() });
    run("3% corruption", FaultConfig { corrupt_chance: 0.03, ..FaultConfig::default() });
    run("5% duplication", FaultConfig { duplicate_chance: 0.05, ..FaultConfig::default() });
    run(
        "2 ms reordering jitter",
        FaultConfig { jitter: VirtualDuration::from_millis(2), ..FaultConfig::default() },
    );
    run(
        "everything at once",
        FaultConfig {
            drop_chance: 0.05,
            corrupt_chance: 0.03,
            duplicate_chance: 0.03,
            jitter: VirtualDuration::from_millis(1),
            ..FaultConfig::default()
        },
    );
    println!();
    println!("every run delivered all 250,000 bytes byte-for-byte intact.");
}
