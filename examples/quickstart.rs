//! Quickstart: two hosts on a simulated 10 Mb/s Ethernet talk TCP.
//!
//! This assembles the paper's `Standard_Tcp` stack (Fig. 3) on two
//! simulated machines, performs the three-way handshake, exchanges a
//! little data in both directions, and closes cleanly — narrating each
//! phase.
//!
//! Run with: `cargo run --example quickstart`

use foxbasis::time::{VirtualDuration, VirtualTime};
use foxharness::sim::drive;
use foxharness::stack::StackKind;
use foxtcp::TcpConfig;
use simnet::{CostModel, SimNet};

fn main() {
    // An isolated 10 Mb/s Ethernet segment, deterministic under seed 7.
    let net = SimNet::ethernet_10mbps(7);

    // Two stations: MAC 02:...:01 / IP 10.0.0.1 and 02:...:02 / 10.0.0.2.
    // `CostModel::modern()` runs the protocol code "for free"; swap in
    // `CostModel::decstation_sml()` to feel 1994.
    let mut alice =
        StackKind::FoxStandard.build(&net, 1, 2, CostModel::modern(), false, TcpConfig::default());
    let mut bob = StackKind::FoxStandard.build(&net, 2, 1, CostModel::modern(), false, TcpConfig::default());

    println!("== passive open: bob listens on port 7777");
    bob.listen(7777);

    println!("== active open: alice connects (SYN / SYN+ACK / ACK follow)");
    let a_conn = alice.connect(7777);

    let mut b_conn = None;
    drive(
        &net,
        &mut [&mut alice, &mut bob],
        |st| {
            if b_conn.is_none() {
                b_conn = st[1].accept();
            }
            b_conn.is_some() && st[0].established(a_conn)
        },
        VirtualDuration::from_millis(1),
        VirtualTime::from_millis(5_000),
    );
    let b_conn = b_conn.expect("bob accepted");
    println!("   established at t = {} (both sides)", net.now());

    println!("== alice -> bob");
    assert_eq!(alice.send(a_conn, b"four score and seven years ago"), 30);
    drive(
        &net,
        &mut [&mut alice, &mut bob],
        |st| st[1].received_len(b_conn) >= 30,
        VirtualDuration::from_millis(1),
        VirtualTime::from_millis(5_000),
    );
    let got = bob.recv(b_conn);
    println!("   bob received {:?}", String::from_utf8_lossy(&got));

    println!("== bob -> alice");
    bob.send(b_conn, b"connection-specialized upcalls at work");
    drive(
        &net,
        &mut [&mut alice, &mut bob],
        |st| st[0].received_len(a_conn) > 0,
        VirtualDuration::from_millis(1),
        VirtualTime::from_millis(5_000),
    );
    println!("   alice received {:?}", String::from_utf8_lossy(&alice.recv(a_conn)));

    println!("== close: FIN / ACK / FIN / ACK, then TIME-WAIT");
    alice.close(a_conn);
    drive(
        &net,
        &mut [&mut alice, &mut bob],
        |st| st[1].peer_closed(b_conn),
        VirtualDuration::from_millis(1),
        VirtualTime::from_millis(5_000),
    );
    bob.close(b_conn);
    drive(
        &net,
        &mut [&mut alice, &mut bob],
        |st| st[1].finished(b_conn),
        VirtualDuration::from_millis(1),
        VirtualTime::from_millis(5_000),
    );
    println!("   bob fully closed; alice lingers in TIME-WAIT for 2MSL");

    let a = alice.stats();
    let b = bob.stats();
    println!("== totals at t = {}", net.now());
    println!("   alice: {} segments out, {} in", a.segments_sent, a.segments_received);
    println!("   bob:   {} segments out, {} in", b.segments_sent, b.segments_received);
    println!("   wire:  {:?}", net.stats());
}
