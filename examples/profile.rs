//! Regenerates the paper's Table 2: the execution profile of the Fox Net
//! TCP/IP stack during the 10^6-byte transfer, measured with the
//! simulated free-running hardware counters (15 µs per update, which —
//! as in 1994 — perturbs the run it measures and shows up as the
//! "counters (est.)" row).
//!
//! Run with: `cargo run --release --example profile`

use foxharness::experiments::{render_table1, render_table2, table1, table2};

fn main() {
    println!("running the Table 1 speed comparison (two 10^6-byte transfers + RTT runs)...");
    let t1 = table1(42);
    println!();
    println!("{}", render_table1(&t1));
    println!(
        "fox sender: {} segments, {} retransmits; xk sender: {} segments",
        t1.fox.bulk.sender.segments_sent, t1.fox.bulk.sender.retransmits, t1.xk.bulk.sender.segments_sent,
    );
    println!();
    println!("running the Table 2 profiled transfer (counters on)...");
    let t2 = table2(42);
    println!();
    println!("{}", render_table2(&t2));
    if let Some(gc) = &t2.bulk.sender_gc {
        println!(
            "sender GC during the profiled run: {} minors, {} majors, max pause {}",
            gc.minors, gc.majors, gc.max_pause
        );
    }
}
