//! Interoperation: the structured Fox TCP and the monolithic x-kernel
//! baseline speak the same RFC 793 wire protocol, so they must talk to
//! each other — in both directions, under loss, with graceful closes.
//! (The paper ran its stack against other implementations on a live
//! Ethernet; this is the simulated equivalent.)

use foxbasis::time::{VirtualDuration, VirtualTime};
use foxharness::sim::drive;
use foxharness::stack::StackKind;
use foxharness::station::Station;
use foxtcp::TcpConfig;
use simnet::{CostModel, FaultConfig, NetConfig, SimNet};

fn cfg() -> TcpConfig {
    TcpConfig { delayed_ack_ms: None, ..TcpConfig::default() }
}

fn pair(
    client: StackKind,
    server: StackKind,
    seed: u64,
    faults: FaultConfig,
) -> (SimNet, Box<dyn Station>, Box<dyn Station>) {
    let net = SimNet::new(NetConfig { faults, ..NetConfig::default() }, seed);
    let c = client.build(&net, 1, 2, CostModel::modern(), false, cfg());
    let s = server.build(&net, 2, 1, CostModel::modern(), false, cfg());
    (net, c, s)
}

fn exchange(client_kind: StackKind, server_kind: StackKind, faults: FaultConfig, bytes: usize) {
    let (net, mut c, mut s) = pair(client_kind, server_kind, 1717, faults);
    s.listen(80);
    let cc = c.connect(80);
    let mut sc = None;
    drive(
        &net,
        &mut [&mut c, &mut s],
        |st| {
            if sc.is_none() {
                sc = st[1].accept();
            }
            sc.is_some() && st[0].established(cc)
        },
        VirtualDuration::from_millis(1),
        VirtualTime::from_millis(120_000),
    );
    let sc = sc.unwrap_or_else(|| panic!("{} -> {}: no handshake", client_kind.name(), server_kind.name()));

    // Client streams `bytes`; server echoes the total count at the end.
    let payload: Vec<u8> = (0..bytes as u32).map(|i| (i % 253) as u8).collect();
    let mut sent = 0;
    let mut received = Vec::new();
    drive(
        &net,
        &mut [&mut c, &mut s],
        |st| {
            if sent < payload.len() {
                sent += st[0].send(cc, &payload[sent..]);
            }
            received.extend_from_slice(&st[1].recv(sc));
            received.len() >= payload.len()
        },
        VirtualDuration::from_millis(1),
        VirtualTime::from_millis(600_000),
    );
    assert_eq!(
        received.len(),
        payload.len(),
        "{} -> {}: transfer incomplete",
        client_kind.name(),
        server_kind.name()
    );
    assert_eq!(received, payload, "{} -> {}: data corrupted", client_kind.name(), server_kind.name());

    // Graceful close initiated by the client.
    c.close(cc);
    drive(
        &net,
        &mut [&mut c, &mut s],
        |st| st[1].peer_closed(sc),
        VirtualDuration::from_millis(1),
        VirtualTime::from_millis(600_000),
    );
    s.close(sc);
    drive(
        &net,
        &mut [&mut c, &mut s],
        |st| st[1].finished(sc),
        VirtualDuration::from_millis(1),
        VirtualTime::from_millis(600_000),
    );
}

#[test]
fn fox_client_to_xk_server() {
    exchange(StackKind::FoxStandard, StackKind::XKernel, FaultConfig::default(), 60_000);
}

#[test]
fn xk_client_to_fox_server() {
    exchange(StackKind::XKernel, StackKind::FoxStandard, FaultConfig::default(), 60_000);
}

#[test]
fn fox_to_xk_with_loss() {
    exchange(
        StackKind::FoxStandard,
        StackKind::XKernel,
        FaultConfig { drop_chance: 0.03, ..FaultConfig::default() },
        30_000,
    );
}

#[test]
fn xk_to_fox_with_corruption() {
    exchange(
        StackKind::XKernel,
        StackKind::FoxStandard,
        FaultConfig { corrupt_chance: 0.03, ..FaultConfig::default() },
        30_000,
    );
}

#[test]
fn fox_to_fox_duplication_and_jitter() {
    exchange(
        StackKind::FoxStandard,
        StackKind::FoxStandard,
        FaultConfig {
            duplicate_chance: 0.05,
            jitter: VirtualDuration::from_millis(1),
            ..FaultConfig::default()
        },
        30_000,
    );
}
