//! The paper's §3 composability claims, checked by the compiler and then
//! exercised: "the compiler can check that any composition of layers is
//! proper and that all the functions required of 'the layer below TCP',
//! for example, are present as functor parameters before allowing the
//! composition."

use foxbasis::time::{VirtualDuration, VirtualTime};
use foxharness::sim::drive;
use foxharness::stack::StackKind;
use foxproto::aux::EthAux;
use foxproto::dev::Dev;
use foxproto::eth::Eth;
use foxproto::udp::Udp;
use foxproto::vp::SizedPayload;
use foxproto::Protocol;
use foxtcp::TcpConfig;
use foxwire::ether::{EthAddr, EtherType};
use simnet::{CostModel, HostHandle, SimNet};
use std::cell::RefCell;
use std::rc::Rc;

/// Fig. 3, both assemblies, as types: this test exists mostly to
/// *compile* — instantiating the TCP functor over IP and over raw
/// Ethernet with the matching aux structures is the paper's
/// compiler-checked-composition demonstration.
#[test]
fn standard_and_special_assemblies_build_and_run() {
    for kind in [StackKind::FoxStandard, StackKind::FoxSpecial] {
        let net = SimNet::ethernet_10mbps(3);
        let mut a = kind.build(&net, 1, 2, CostModel::modern(), false, TcpConfig::default());
        let mut b = kind.build(&net, 2, 1, CostModel::modern(), false, TcpConfig::default());
        b.listen(1234);
        let conn = a.connect(1234);
        let mut bc = None;
        drive(
            &net,
            &mut [&mut a, &mut b],
            |st| {
                if bc.is_none() {
                    bc = st[1].accept();
                }
                bc.is_some() && st[0].established(conn)
            },
            VirtualDuration::from_millis(1),
            VirtualTime::from_millis(5_000),
        );
        assert!(a.established(conn), "{}: handshake", kind.name());
        a.send(conn, b"composable");
        let bc = bc.unwrap();
        drive(
            &net,
            &mut [&mut a, &mut b],
            |st| st[1].received_len(bc) >= 10,
            VirtualDuration::from_millis(1),
            VirtualTime::from_millis(5_000),
        );
        assert_eq!(b.recv(bc), b"composable", "{}", kind.name());
    }
}

/// The same genericity applies to UDP: `Udp(structure Lower = Eth ...)`
/// — a UDP running directly over Ethernet, no IP — type-checks and
/// works, because `Eth` satisfies `PROTOCOL` and `EthAux` satisfies
/// `IP_AUX`.
#[test]
fn udp_directly_over_ethernet() {
    let net = SimNet::ethernet_10mbps(9);
    let mk = |id: u8| {
        let host = HostHandle::free();
        let mac = EthAddr::host(id);
        let eth = SizedPayload::new(Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host.clone()));
        Udp::new(eth, EthAux::new(), EtherType::TcpDirect, false, host)
    };
    let mut a = mk(1);
    let mut b = mk(2);
    let got = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    b.open(6969, Box::new(move |m| g.borrow_mut().push(m))).unwrap();
    let sock = a.open(5000, Box::new(|_| {})).unwrap();
    a.send(sock, (EthAddr::host(2), 6969), b"udp over raw ethernet".to_vec()).unwrap();
    for _ in 0..20 {
        if let Some(t) = net.next_delivery() {
            net.advance_to(t);
        }
        a.step(net.now());
        b.step(net.now());
    }
    assert_eq!(got.borrow().len(), 1);
    assert_eq!(got.borrow()[0].payload, b"udp over raw ethernet");
    assert_eq!(got.borrow()[0].src, (EthAddr::host(1), 5000));
}
