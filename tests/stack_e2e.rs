//! Whole-system end-to-end properties: determinism at system scale (the
//! paper's central testability claim), data integrity under arbitrary
//! network abuse, and the behavior of the full stack's substrate
//! features (ARP, fragmentation, ICMP) under the same roof as TCP.

use foxbasis::time::{VirtualDuration, VirtualTime};
use foxharness::sim::drive;
use foxharness::stack::StackKind;
use foxharness::workload::{bulk_transfer, ping_pong};
use foxtcp::TcpConfig;
use simnet::{CostModel, FaultConfig, NetConfig, SimNet};

fn cfg() -> TcpConfig {
    TcpConfig { delayed_ack_ms: None, ..TcpConfig::default() }
}

/// "Once the actions have been placed on the queue the behavior of TCP
/// is completely deterministic and testable" — at whole-system scale:
/// identical seeds must give bit-identical statistics even on a hostile
/// network, and different seeds must diverge.
#[test]
fn system_scale_determinism() {
    let run = |seed: u64| {
        let faults = FaultConfig {
            drop_chance: 0.05,
            corrupt_chance: 0.02,
            duplicate_chance: 0.02,
            jitter: VirtualDuration::from_millis(1),
            ..FaultConfig::default()
        };
        let netcfg = NetConfig { faults, ..NetConfig::default() };
        let net = SimNet::new(netcfg, seed);
        let mut s = StackKind::FoxStandard.build(&net, 1, 2, CostModel::decstation_sml(), false, cfg());
        let mut r = StackKind::FoxStandard.build(&net, 2, 1, CostModel::decstation_sml(), false, cfg());
        let res = bulk_transfer(&net, &mut s, &mut r, 100_000, VirtualTime::from_micros(u64::MAX / 2));
        (res.elapsed, res.sender, res.receiver, net.stats())
    };
    let a = run(12345);
    let b = run(12345);
    assert_eq!(a, b, "same seed, same everything");
    let c = run(54321);
    assert_ne!(a.3, c.3, "different seed, different network history");
}

/// Data integrity across every fault class at once, all three stacks.
#[test]
fn integrity_under_abuse_all_stacks() {
    for kind in [StackKind::FoxStandard, StackKind::FoxSpecial, StackKind::XKernel] {
        let faults = FaultConfig {
            drop_chance: 0.04,
            corrupt_chance: 0.02,
            duplicate_chance: 0.02,
            jitter: VirtualDuration::from_micros(800),
            ..FaultConfig::default()
        };
        let netcfg = NetConfig { faults, ..NetConfig::default() };
        let net = SimNet::new(netcfg, 777);
        let mut s = kind.build(&net, 1, 2, CostModel::modern(), false, cfg());
        let mut r = kind.build(&net, 2, 1, CostModel::modern(), false, cfg());
        let res = bulk_transfer(&net, &mut s, &mut r, 60_000, VirtualTime::from_micros(u64::MAX / 2));
        assert_eq!(res.bytes, 60_000, "{}: incomplete", kind.name());
        assert!(res.sender.retransmits > 0, "{}: loss must have caused retransmits", kind.name());
    }
}

/// Fast recovery under Gilbert–Elliott burst loss: short bursts knock
/// out part of a window, the duplicate ACKs behind the hole trigger
/// fast retransmit, and the whole transfer completes without a single
/// retransmission-timer fallback. (Seed 173 is a pinned deterministic
/// run whose bursts all land mid-window; the window is 16 KB ≈ 11 MSS
/// so three duplicates can actually accumulate.)
#[test]
fn burst_loss_recovers_without_rto() {
    let tcp =
        TcpConfig { initial_window: 16384, send_buffer: 32768, delayed_ack_ms: None, ..TcpConfig::default() };
    let netcfg = NetConfig { faults: FaultConfig::bursty(1.0 / 60.0, 0.5, 1.0), ..NetConfig::default() };
    let net = SimNet::new(netcfg, 173);
    let mut s = StackKind::FoxStandard.build(&net, 1, 2, CostModel::modern(), false, tcp.clone());
    let mut r = StackKind::FoxStandard.build(&net, 2, 1, CostModel::modern(), false, tcp);
    let res = bulk_transfer(&net, &mut s, &mut r, 200_000, VirtualTime::from_millis(120_000));
    assert_eq!(res.bytes, 200_000, "burst-loss transfer must complete");
    let st = res.sender;
    assert!(st.recoveries > 0, "losses must be repaired by fast recovery: {st:?}");
    assert!(st.fast_retransmits > 0, "{st:?}");
    assert_eq!(st.rto_fires, 0, "no retransmission-timer fallback: {st:?}");
    assert!(st.retransmits >= st.fast_retransmits, "{st:?}");
}

/// The receive-queue bound (the 24 KB "Mach buffer"): a sender that
/// bursts more than the receiver's queue drops frames at the buffer and
/// TCP recovers — no wedge, no corruption.
#[test]
fn kernel_buffer_overflow_recovers() {
    let netcfg = NetConfig { rx_capacity: 4096, ..NetConfig::default() }; // a tiny kernel buffer
    let net = SimNet::new(netcfg, 31);
    let mut s = StackKind::FoxStandard.build(&net, 1, 2, CostModel::modern(), false, cfg());
    let mut r = StackKind::FoxStandard.build(&net, 2, 1, CostModel::modern(), false, cfg());
    let res = bulk_transfer(&net, &mut s, &mut r, 80_000, VirtualTime::from_micros(u64::MAX / 2));
    assert_eq!(res.bytes, 80_000);
}

/// RTT through the full stack is sane: more than the wire time, far less
/// than a timer artifact, and the mean sits between min and max.
#[test]
fn rtt_through_full_stack() {
    let net = SimNet::ethernet_10mbps(5);
    let mut server = StackKind::FoxStandard.build(&net, 1, 2, CostModel::modern(), false, cfg());
    let mut client = StackKind::FoxStandard.build(&net, 2, 1, CostModel::modern(), false, cfg());
    let r = ping_pong(&net, &mut server, &mut client, 25, 64, VirtualTime::from_micros(u64::MAX / 2));
    assert_eq!(r.rounds, 25);
    // Wire time for a small frame is ~120 µs round trip.
    assert!(r.mean_rtt >= VirtualDuration::from_micros(100), "{:?}", r.mean_rtt);
    assert!(r.mean_rtt <= VirtualDuration::from_millis(50), "{:?}", r.mean_rtt);
    assert!(r.min_rtt <= r.mean_rtt && r.mean_rtt <= r.max_rtt);
}

/// The 1994 machine model must reproduce the paper's headline relation:
/// Fox Net markedly slower than the x-kernel, both far below the wire.
#[test]
fn paper_speed_relation_holds() {
    let bytes = 200_000; // smaller than Table 1's 10^6 to keep tests fast
    let run = |kind: StackKind, cost: fn() -> CostModel| {
        let net = SimNet::ethernet_10mbps(42);
        let mut s = kind.build(&net, 1, 2, cost(), false, foxharness::experiments::paper_tcp_config());
        let mut r = kind.build(&net, 2, 1, cost(), false, foxharness::experiments::paper_tcp_config());
        bulk_transfer(&net, &mut s, &mut r, bytes, VirtualTime::from_micros(u64::MAX / 2)).throughput_mbps
    };
    let fox = run(StackKind::FoxStandard, CostModel::decstation_sml);
    let xk = run(StackKind::XKernel, CostModel::decstation_c);
    assert!(fox < xk, "fox {fox} must be slower than xk {xk}");
    let ratio = fox / xk;
    assert!((0.1..=0.5).contains(&ratio), "throughput ratio {ratio:.2} should bracket the paper's 0.24");
    assert!(xk < 10.0, "nobody beats the wire");
}

/// A drive over a long silent period does not spin or wedge (timers and
/// idle detection cooperate).
#[test]
fn quiescent_stack_stays_quiescent() {
    let net = SimNet::ethernet_10mbps(1);
    let mut a = StackKind::FoxStandard.build(&net, 1, 2, CostModel::modern(), false, cfg());
    let mut b = StackKind::FoxStandard.build(&net, 2, 1, CostModel::modern(), false, cfg());
    b.listen(1);
    let conn = a.connect(1);
    drive(
        &net,
        &mut [&mut a, &mut b],
        |st| st[0].established(conn),
        VirtualDuration::from_millis(1),
        VirtualTime::from_millis(2_000),
    );
    // Ten idle virtual minutes.
    drive(
        &net,
        &mut [&mut a, &mut b],
        |_| false,
        VirtualDuration::from_millis(100),
        VirtualTime::from_millis(600_000),
    );
    assert!(a.established(conn), "connection survives idleness");
    let before = a.stats().segments_sent;
    a.send(conn, b"still alive");
    let mut bc = None;
    drive(
        &net,
        &mut [&mut a, &mut b],
        |st| {
            if bc.is_none() {
                bc = st[1].accept();
            }
            bc.is_some_and(|c| st[1].received_len(c) > 0)
        },
        VirtualDuration::from_millis(1),
        VirtualTime::from_millis(660_000),
    );
    assert!(a.stats().segments_sent > before);
}
