//! End-to-end across subnets: the structured TCP connects from
//! 10.0.0.1 through an IP router to 10.0.1.2 — two simulated Ethernet
//! segments, gateway routing, per-segment ARP, TTL decrement, and the
//! full TCP session on top. The deepest composition the substrate
//! supports, exercised end to end.

use fox_scheduler::SchedHandle;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxproto::aux::IpAuxImpl;
use foxproto::dev::Dev;
use foxproto::eth::Eth;
use foxproto::ip::{Ip, IpConfig};
use foxproto::router::Router;
use foxproto::Protocol;
use foxtcp::{Tcp, TcpConfig, TcpConnId, TcpEvent, TcpPattern};
use foxwire::ether::EthAddr;
use foxwire::ipv4::{IpProtocol, Ipv4Addr};
use simnet::{HostHandle, SimNet};
use std::cell::RefCell;
use std::rc::Rc;

type Stack = Tcp<Ip<Eth<Dev>>, IpAuxImpl>;

fn station(net: &SimNet, mac_id: u8, addr: Ipv4Addr, gateway: Ipv4Addr) -> Stack {
    let host = HostHandle::free();
    let mac = EthAddr::host(mac_id);
    let eth = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host.clone());
    let ip = Ip::new(
        eth,
        mac,
        IpConfig { local: addr, prefix_len: 24, gateway: Some(gateway), ttl: 64 },
        host.clone(),
    );
    let mtu = ip.mtu();
    let aux = IpAuxImpl::new(addr, IpProtocol::Tcp, mtu);
    let cfg = TcpConfig { nagle: false, delayed_ack_ms: None, ..TcpConfig::default() };
    Tcp::new(ip, aux, IpProtocol::Tcp, cfg, SchedHandle::new(), host)
}

#[test]
fn tcp_session_through_the_router() {
    let net1 = SimNet::ethernet_10mbps(11);
    let net2 = SimNet::ethernet_10mbps(22);
    let mut client = station(&net1, 1, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 254));
    let mut server = station(&net2, 2, Ipv4Addr::new(10, 0, 1, 2), Ipv4Addr::new(10, 0, 1, 254));
    let mut router = Router::new();
    router
        .add_interface(&net1, EthAddr::host(101), Ipv4Addr::new(10, 0, 0, 254), 24, HostHandle::free())
        .unwrap();
    router
        .add_interface(&net2, EthAddr::host(102), Ipv4Addr::new(10, 0, 1, 254), 24, HostHandle::free())
        .unwrap();

    let received = Rc::new(RefCell::new(Vec::new()));
    let events = Rc::new(RefCell::new(Vec::new()));
    server.open(TcpPattern::Passive { local_port: 80 }, Box::new(|_| {})).unwrap();
    let ev = events.clone();
    let conn = client
        .open(
            TcpPattern::Active { remote: Ipv4Addr::new(10, 0, 1, 2), remote_port: 80, local_port: 0 },
            Box::new(move |e| ev.borrow_mut().push(e)),
        )
        .unwrap();

    // Drive both segments and all three boxes on one logical clock.
    let drive = |client: &mut Stack, server: &mut Stack, router: &mut Router, until_ms: u64| {
        let mut now = net1.now().max(net2.now());
        let end = VirtualTime::from_millis(until_ms);
        while now < end {
            for _ in 0..50 {
                let mut progress = false;
                progress |= client.step(now);
                progress |= server.step(now);
                progress |= router.step(now);
                for n in [&net1, &net2] {
                    if let Some(t) = n.next_delivery() {
                        if t <= now {
                            n.advance_to(now);
                            progress = true;
                        }
                    }
                }
                if !progress {
                    break;
                }
            }
            let mut next = now + VirtualDuration::from_millis(1);
            for n in [&net1, &net2] {
                if let Some(t) = n.next_delivery() {
                    next = next.min(t.max(now + VirtualDuration::from_micros(1)));
                }
            }
            for n in [&net1, &net2] {
                if n.now() < next {
                    n.advance_to(next);
                }
            }
            now = next;
        }
    };

    drive(&mut client, &mut server, &mut router, 2_000);
    assert!(
        events.borrow().contains(&TcpEvent::Established),
        "handshake across the router: {:?}, router {:?}",
        events.borrow(),
        router.stats()
    );

    // Adopt the server-side child and stream data across.
    let r = received.clone();
    server
        .set_handler(
            TcpConnId(1),
            Box::new(move |e| {
                if let TcpEvent::Data(d) = e {
                    r.borrow_mut().extend_from_slice(&d);
                }
            }),
        )
        .unwrap();

    let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 247) as u8).collect();
    let mut sent = 0;
    for _ in 0..200 {
        sent += client.send_data(conn, &payload[sent..]).unwrap_or(0);
        let base = net1.now().max(net2.now()).as_millis();
        drive(&mut client, &mut server, &mut router, base + 100);
        if received.borrow().len() >= payload.len() {
            break;
        }
    }
    assert_eq!(received.borrow().len(), payload.len(), "router stats: {:?}", router.stats());
    assert_eq!(&received.borrow()[..], &payload[..]);
    assert!(router.stats().forwarded > 80, "every segment crossed the router: {:?}", router.stats());

    // Clean close across subnets.
    client.close(conn).unwrap();
    let base = net1.now().max(net2.now()).as_millis();
    drive(&mut client, &mut server, &mut router, base + 500);
    assert!(
        events.borrow().iter().any(|e| matches!(e, TcpEvent::PeerClosed)) || {
            // server closed nothing yet; client is in FIN-WAIT-2 once its
            // FIN is acked — verify via state.
            client.state_of(conn) == Some(foxtcp::TcpState::FinWait2)
        }
    );
}
