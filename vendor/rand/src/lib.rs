//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a registry, so this vendored
//! crate supplies the small, fully deterministic subset of the `rand`
//! 0.8 API that the workspace actually uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_bool` and `Rng::gen_range`
//! over integer ranges. The generator is splitmix64 — statistically fine
//! for fault injection and property tests, and bit-for-bit reproducible
//! from a `u64` seed, which is the property the simulator's determinism
//! tests depend on. It does *not* match upstream `rand`'s stream.

// Vendored stand-in: exempt from the workspace lint bar.
#![allow(clippy::all)]
#![deny(unsafe_code)]

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling interface over any [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics on an empty range, like upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types that `gen_range` can sample.
pub trait SampleUniform: Copy {
    /// Uniform sample in `[lo, hi]` (inclusive both ends).
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Range shapes accepted by `gen_range`.
pub trait SampleRange<T> {
    /// Draws one sample; panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full-width range: any value is valid.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                <$t>::sample_inclusive(self.start, self.end - 1, rng)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                <$t>::sample_inclusive(*self.start(), *self.end(), rng)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..=5);
            assert!(y <= 5);
            let z = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
