//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest this workspace uses: the
//! `proptest!` macro, `ProptestConfig::with_cases`, `any::<T>()`,
//! integer-range / tuple / `collection::vec` / `option::of` strategies,
//! `prop_map`, and the `prop_assert*` macros.
//!
//! Differences from upstream, on purpose:
//! * Generation is **deterministic**: the case RNG is seeded from the
//!   test's module path and name plus the case index, so every run of
//!   the suite explores the same inputs. A failure therefore reproduces
//!   by just re-running the test.
//! * There is **no shrinking**; a failing case panics with the values
//!   printed by the test's own assert message.
//! * `proptest-regressions` files are not consumed (the seed format is
//!   upstream-internal). Known regressions should be pinned as explicit
//!   `#[test]`s replaying the recorded values — see
//!   `crates/foxtcp/tests/fuzz.rs` for the pattern.

// Vendored stand-in: exempt from the workspace lint bar.
#![allow(clippy::all)]
#![deny(unsafe_code)]

/// Test-runner configuration.
pub mod test_runner {
    /// The subset of upstream's `ProptestConfig` the workspace uses.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-case generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        pub fn from_seed(state: u64) -> Self {
            TestRng { state }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Stable seed for `(test name, case index)`: FNV-1a over the name,
    /// mixed with the index.
    pub fn seed_for(test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^ ((case as u64).wrapping_mul(0x2545_f491_4f6c_dd1d))
    }
}

/// Strategies: how values are generated.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use core::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    sample_int(self.start as i128, self.end as i128 - 1, rng) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    sample_int(*self.start() as i128, *self.end() as i128, rng) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    fn sample_int(lo: i128, hi: i128, rng: &mut TestRng) -> i128 {
        let span = (hi - lo) as u128 + 1;
        lo + ((rng.next_u64() as u128) % span) as i128
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

/// `any::<T>()` and friends.
pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};
    use core::marker::PhantomData;

    /// A strategy generating unconstrained values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`]: an exact length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Upstream defaults to 3:1 in favour of Some.
            if rng.next_u64() % 4 != 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// Generates `Some` of the inner strategy's value, or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The property-test macro: runs each body `config.cases` times with
/// freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item muncher for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $crate::__proptest_fn! { ($cfg) [$(#[$meta])*] $name [] ($($params)*) $body }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Internal parameter muncher: normalizes both `pat in strategy` and
/// `ident: Type` (sugar for `any::<Type>()`) parameter forms into
/// `(pattern, strategy)` pairs, then emits the test fn. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fn {
    // All parameters consumed: emit the test function.
    (($cfg:expr) [$($meta:tt)*] $name:ident
     [$(($arg:pat, $strat:expr))+] () $body:block) => {
        $($meta)*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __strats = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let __seed = $crate::test_runner::seed_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                $body
            }
        }
    };
    // `pat in strategy`, followed by more parameters.
    (($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*]
     ($arg:pat in $strat:expr, $($more:tt)*) $body:block) => {
        $crate::__proptest_fn! {
            ($cfg) [$($meta)*] $name [$($acc)* ($arg, $strat)] ($($more)*) $body
        }
    };
    // `pat in strategy`, last parameter.
    (($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*]
     ($arg:pat in $strat:expr) $body:block) => {
        $crate::__proptest_fn! {
            ($cfg) [$($meta)*] $name [$($acc)* ($arg, $strat)] () $body
        }
    };
    // `ident: Type`, followed by more parameters.
    (($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*]
     ($arg:ident : $ty:ty, $($more:tt)*) $body:block) => {
        $crate::__proptest_fn! {
            ($cfg) [$($meta)*] $name
            [$($acc)* ($arg, $crate::arbitrary::any::<$ty>())] ($($more)*) $body
        }
    };
    // `ident: Type`, last parameter.
    (($cfg:expr) [$($meta:tt)*] $name:ident [$($acc:tt)*]
     ($arg:ident : $ty:ty) $body:block) => {
        $crate::__proptest_fn! {
            ($cfg) [$($meta)*] $name
            [$($acc)* ($arg, $crate::arbitrary::any::<$ty>())] () $body
        }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The usual glob import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_tuples(a in 0u8..10, b in -5i64..5, v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies(x in (0u32..100, 0u32..100).prop_map(|(a, b)| a + b)) {
            prop_assert!(x < 199);
        }

        #[test]
        fn option_of_mixes(m in crate::option::of(1u16..10)) {
            if let Some(v) = m {
                prop_assert!((1..10).contains(&v));
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(any::<u32>(), 0..16);
        let seed = crate::test_runner::seed_for("x", 3);
        let a = strat.generate(&mut crate::test_runner::TestRng::from_seed(seed));
        let b = strat.generate(&mut crate::test_runner::TestRng::from_seed(seed));
        assert_eq!(a, b);
    }
}
