//! Offline stand-in for the `criterion` crate.
//!
//! Supplies the API shape the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!`/`criterion_main!` macros — backed by a simple
//! calibrated-loop timer instead of criterion's statistical machinery.
//! Each benchmark reports a mean per-iteration time (and throughput when
//! configured); there are no plots, baselines, or outlier analysis.

// Vendored stand-in: exempt from the workspace lint bar.
#![allow(clippy::all)]
#![deny(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Throughput configuration for a benchmark group.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Something usable as a benchmark id: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    /// Mean per-iteration time measured by the last `iter` call.
    per_iter: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up and calibrating an iteration
    /// count so the measured window is long enough to be stable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration: find how many iterations fit ~20 ms.
        let mut n: u64 = 1;
        let per = loop {
            let t0 = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(20) || n >= 1 << 30 {
                break dt / (n as u32).max(1);
            }
            n = n.saturating_mul(4);
        };
        // Measurement: three windows at the calibrated count, keep the best.
        let mut best = per;
        for _ in 0..3 {
            let t0 = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed() / (n as u32).max(1);
            if dt < best {
                best = dt;
            }
        }
        self.per_iter = best;
    }
}

fn report(id: &str, per_iter: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{id:<48} {:>12.3?}/iter", per_iter);
    if let Some(t) = throughput {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match t {
            Throughput::Bytes(b) => {
                let _ = write!(line, "  {:>10.1} MiB/s", b as f64 / secs / (1024.0 * 1024.0));
            }
            Throughput::Elements(e) => {
                let _ = write!(line, "  {:>10.1} Melem/s", e as f64 / secs / 1e6);
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for reporting rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count (accepted for API compatibility; the
    /// stand-in sizes its own measurement windows).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { per_iter: Duration::ZERO };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into_id()), b.per_iter, self.throughput);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { per_iter: Duration::ZERO };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.per_iter, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _parent: self }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { per_iter: Duration::ZERO };
        f(&mut b);
        report(&id.into_id(), b.per_iter, None);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { per_iter: Duration::ZERO };
        f(&mut b, input);
        report(&id.id, b.per_iter, None);
        self
    }
}

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
